"""Rule-based learner: an ensemble (monotone DNF) of conjunctive matching rules.

Following Qian et al. (and Section 4.3 of the paper), the rule learner works
on *Boolean* predicate features (``JaccardSim(left.name, right.name) ≥ 0.4``)
and learns a disjunction of high-precision conjunctive rules.  Each conjunct
is grown greedily, predicate by predicate, until it reaches the precision
target on the labeled data; rules are accumulated set-cover style so that
every new rule covers positives missed by the existing ensemble — exactly the
"active ensemble of high-precision rules" the paper describes.

The learner also exposes the hooks required by the LFP/LFN example-selection
heuristic: the current candidate rule, its rule-minus relaxations, and a
feature-similarity score used to rank likely false positives/negatives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import Learner, LearnerFamily
from ..exceptions import ConfigurationError, NotFittedError


@dataclass(frozen=True)
class ConjunctiveRule:
    """A conjunction of Boolean predicates, referenced by feature column index."""

    predicates: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.predicates) == 0:
            raise ConfigurationError("a conjunctive rule needs at least one predicate")
        if len(set(self.predicates)) != len(self.predicates):
            raise ConfigurationError("duplicate predicates in rule")

    def covers(self, boolean_features: np.ndarray) -> np.ndarray:
        """Boolean mask of the rows on which every predicate of the rule holds."""
        return np.all(boolean_features[:, list(self.predicates)] >= 0.5, axis=1)

    def minus(self, predicate: int) -> "ConjunctiveRule | None":
        """The rule-minus relaxation obtained by dropping one predicate."""
        remaining = tuple(p for p in self.predicates if p != predicate)
        if not remaining:
            return None
        return ConjunctiveRule(remaining)

    def relaxations(self) -> list["ConjunctiveRule"]:
        """All rule-minus variants (each drops exactly one predicate)."""
        variants = [self.minus(p) for p in self.predicates]
        return [v for v in variants if v is not None]

    @property
    def n_atoms(self) -> int:
        return len(self.predicates)

    def describe(self, feature_names: list[str]) -> str:
        return " AND ".join(feature_names[p] for p in self.predicates)


class RuleLearner(Learner):
    """Learns a monotone DNF of high-precision conjunctive rules.

    Parameters
    ----------
    min_precision:
        A conjunctive rule is accepted into the DNF only if its precision on
        the labeled data is at least this value (the paper uses 0.85 as the
        ensemble acceptance threshold).
    max_predicates:
        Maximum number of atoms per conjunctive rule.
    max_rules:
        Cap on the number of rules in the DNF.
    min_positive_coverage:
        A rule must cover at least this many labeled positives to be accepted.
    """

    family = LearnerFamily.RULE
    name = "rule_learner"

    def __init__(
        self,
        min_precision: float = 0.85,
        max_predicates: int = 4,
        max_rules: int = 12,
        min_positive_coverage: int = 2,
        random_state: int | None = 0,
    ):
        super().__init__()
        if not 0.0 < min_precision <= 1.0:
            raise ConfigurationError("min_precision must be in (0, 1]")
        if max_predicates <= 0 or max_rules <= 0 or min_positive_coverage <= 0:
            raise ConfigurationError("max_predicates, max_rules, min_positive_coverage must be positive")
        self.min_precision = min_precision
        self.max_predicates = max_predicates
        self.max_rules = max_rules
        self.min_positive_coverage = min_positive_coverage
        self.random_state = random_state
        self.rules: list[ConjunctiveRule] = []
        self.candidate_rule: ConjunctiveRule | None = None

    def clone(self) -> "RuleLearner":
        return RuleLearner(
            min_precision=self.min_precision,
            max_predicates=self.max_predicates,
            max_rules=self.max_rules,
            min_positive_coverage=self.min_positive_coverage,
            random_state=self.random_state,
        )

    # ------------------------------------------------------------------ train
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RuleLearner":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if features.ndim != 2 or len(features) != len(labels):
            raise ConfigurationError("features must be 2-D and aligned with labels")
        self.rules = []
        self.candidate_rule = None

        uncovered_positives = labels == 1
        while uncovered_positives.sum() >= self.min_positive_coverage and len(self.rules) < self.max_rules:
            rule = self._grow_rule(features, labels, uncovered_positives)
            if rule is None:
                break
            covered = rule.covers(features)
            precision = _precision(covered, labels)
            positive_coverage = int((covered & uncovered_positives).sum())
            self.candidate_rule = rule
            if precision < self.min_precision or positive_coverage < self.min_positive_coverage:
                # Keep the candidate around for LFP/LFN refinement, but do not
                # accept it into the DNF yet.
                break
            self.rules.append(rule)
            uncovered_positives = uncovered_positives & ~covered

        if self.candidate_rule is None and self.rules:
            self.candidate_rule = self.rules[-1]
        self._fitted = True
        return self

    def _grow_rule(
        self, features: np.ndarray, labels: np.ndarray, target_positives: np.ndarray
    ) -> ConjunctiveRule | None:
        """Greedily grow one conjunction maximizing precision, then coverage."""
        n, dim = features.shape
        chosen: list[int] = []
        coverage = np.ones(n, dtype=bool)

        for _ in range(self.max_predicates):
            best_predicate = None
            best_score = (-1.0, -1)
            for predicate in range(dim):
                if predicate in chosen:
                    continue
                new_coverage = coverage & (features[:, predicate] >= 0.5)
                positives_covered = int((new_coverage & target_positives).sum())
                if positives_covered == 0:
                    continue
                precision = _precision(new_coverage, labels)
                score = (precision, positives_covered)
                if score > best_score:
                    best_score = score
                    best_predicate = predicate
            if best_predicate is None:
                break
            chosen.append(best_predicate)
            coverage = coverage & (features[:, best_predicate] >= 0.5)
            if best_score[0] >= 1.0:
                break

        if not chosen:
            return None
        return ConjunctiveRule(tuple(chosen))

    # -------------------------------------------------------------- inference
    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = np.asarray(features, dtype=float)
        if not self.rules:
            return np.zeros(len(features), dtype=np.int64)
        fired = np.zeros(len(features), dtype=bool)
        for rule in self.rules:
            fired |= rule.covers(features)
        return fired.astype(np.int64)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Fraction of DNF rules that fire; 0 when the DNF is empty."""
        self._require_fitted()
        features = np.asarray(features, dtype=float)
        if not self.rules:
            return np.zeros(len(features))
        fires = np.vstack([rule.covers(features) for rule in self.rules])
        return fires.mean(axis=0)

    # ---------------------------------------------------------- introspection
    @property
    def n_atoms(self) -> int:
        """Total number of atoms across the DNF (atoms counted with repetition)."""
        return sum(rule.n_atoms for rule in self.rules)

    def describe(self, feature_names: list[str]) -> str:
        """Human-readable DNF, e.g. for the Abt-Buy rule listing in Section 6.3."""
        if not self.rules:
            return "<empty DNF>"
        return "\n OR \n".join(rule.describe(feature_names) for rule in self.rules)

    def active_rule(self) -> ConjunctiveRule:
        """The rule refined by LFP/LFN selection in the current iteration."""
        if self.candidate_rule is None:
            raise NotFittedError("rule learner has no candidate rule yet")
        return self.candidate_rule


def _precision(predicted_positive: np.ndarray, labels: np.ndarray) -> float:
    covered = int(predicted_positive.sum())
    if covered == 0:
        return 0.0
    true_positive = int((predicted_positive & (labels == 1)).sum())
    return true_positive / covered
