"""Logistic regression: a second linear-family learner (extension).

The paper evaluates one representative per classifier family; because the
framework is plug-and-play, additional members of a family can be dropped in
without touching the selectors.  Logistic regression shares the linear SVM's
margin semantics (``w·x + b``), so margin-based and blocked-margin selection
apply to it unchanged.
"""

from __future__ import annotations

import numpy as np

from ..core.base import Learner, LearnerFamily
from ..exceptions import ConfigurationError
from ..utils import ensure_rng


class LogisticRegression(Learner):
    """L2-regularized logistic regression trained with full-batch gradient descent.

    Setting the ``warm_start`` flag makes :meth:`fit` resume gradient descent
    from the current ``weights``/``bias`` (when already fitted on the same
    dimensionality) instead of re-initializing.
    """

    family = LearnerFamily.LINEAR
    name = "logistic_regression"
    supports_warm_start = True

    def __init__(
        self,
        regularization: float = 1e-3,
        epochs: int = 200,
        learning_rate: float = 0.5,
        class_weight: str | None = "balanced",
        random_state: int | None = 0,
    ):
        super().__init__()
        if regularization < 0:
            raise ConfigurationError("regularization must be non-negative")
        if epochs <= 0 or learning_rate <= 0:
            raise ConfigurationError("epochs and learning_rate must be positive")
        if class_weight not in (None, "balanced"):
            raise ConfigurationError("class_weight must be None or 'balanced'")
        self.regularization = regularization
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.class_weight = class_weight
        self.random_state = random_state
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0

    def clone(self) -> "LogisticRegression":
        return LogisticRegression(
            regularization=self.regularization,
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            class_weight=self.class_weight,
            random_state=self.random_state,
        )

    def _sample_weights(self, labels: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones_like(labels, dtype=float)
        n = len(labels)
        n_pos = max(1, int(labels.sum()))
        n_neg = max(1, n - int(labels.sum()))
        return np.where(labels == 1, n / (2.0 * n_pos), n / (2.0 * n_neg))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.ndim != 2 or len(features) != len(labels):
            raise ConfigurationError("features must be 2-D and aligned with labels")
        rng = ensure_rng(self.random_state)
        n, dim = features.shape
        if self.warm_start and self._fitted and self.weights is not None and len(self.weights) == dim:
            weights = self.weights.copy()
            bias = self.bias
        else:
            weights = rng.normal(scale=1e-3, size=dim)
            bias = 0.0
        sample_weights = self._sample_weights(labels)

        for _ in range(self.epochs):
            scores = features @ weights + bias
            probabilities = 1.0 / (1.0 + np.exp(-np.clip(scores, -30, 30)))
            error = sample_weights * (probabilities - labels)
            gradient_w = features.T @ error / n + self.regularization * weights
            gradient_b = float(error.mean())
            weights -= self.learning_rate * gradient_w
            bias -= self.learning_rate * gradient_b

        self.weights = weights
        self.bias = bias
        self._fitted = True
        return self

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.asarray(features, dtype=float) @ self.weights + self.bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(self.decision_scores(features), -30, 30)))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) > 0.5).astype(np.int64)
