"""CART-style decision tree with random feature sub-sampling at each split.

Configured like the Corleone system (and Section 4.1.1 of the paper): trees of
unlimited depth that consider a random subset of ``log2(Dim + 1)`` features at
every node split.  The tree is the building block of
:class:`~repro.learners.random_forest.RandomForest`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import Learner, LearnerFamily
from ..exceptions import ConfigurationError
from ..utils import ensure_rng


@dataclass
class _Node:
    """A tree node: either an internal split or a leaf with a match probability."""

    prediction: float
    depth: int
    feature: int | None = None
    threshold: float | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(labels: np.ndarray) -> float:
    if len(labels) == 0:
        return 0.0
    p = labels.mean()
    return 2.0 * p * (1.0 - p)


class DecisionTree(Learner):
    """Binary classification tree (Gini impurity, unlimited depth by default).

    Parameters
    ----------
    max_features:
        ``"log2"`` (the Corleone setting — ``log2(Dim+1)`` random features per
        split), ``"all"`` to consider every feature, or an explicit integer.
    max_depth:
        Optional depth cap (None = unlimited, as in the paper).
    min_samples_split:
        Minimum number of samples required to attempt a split.
    """

    family = LearnerFamily.TREE
    name = "decision_tree"

    def __init__(
        self,
        max_features: str | int = "log2",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        random_state: int | None = 0,
    ):
        super().__init__()
        if isinstance(max_features, str) and max_features not in ("log2", "all"):
            raise ConfigurationError("max_features must be 'log2', 'all' or an int")
        if isinstance(max_features, int) and max_features <= 0:
            raise ConfigurationError("max_features must be positive")
        if min_samples_split < 2:
            raise ConfigurationError("min_samples_split must be at least 2")
        if max_depth is not None and max_depth <= 0:
            raise ConfigurationError("max_depth must be positive or None")
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.random_state = random_state
        self._root: _Node | None = None
        self._dim: int | None = None

    def clone(self) -> "DecisionTree":
        return DecisionTree(
            max_features=self.max_features,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            random_state=self.random_state,
        )

    # ------------------------------------------------------------------ train
    def _n_split_features(self, dim: int) -> int:
        if self.max_features == "all":
            return dim
        if self.max_features == "log2":
            return max(1, int(np.log2(dim + 1)))
        return min(dim, int(self.max_features))

    def fit(self, features: np.ndarray, labels: np.ndarray, rng: np.random.Generator | None = None) -> "DecisionTree":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.ndim != 2 or len(features) != len(labels):
            raise ConfigurationError("features must be 2-D and aligned with labels")
        rng = rng if rng is not None else ensure_rng(self.random_state)
        self._dim = features.shape[1]
        self._root = self._build(features, labels, depth=0, rng=rng)
        self._fitted = True
        return self

    def _build(self, features: np.ndarray, labels: np.ndarray, depth: int, rng: np.random.Generator) -> _Node:
        node = _Node(prediction=float(labels.mean()) if len(labels) else 0.0, depth=depth, n_samples=len(labels))
        if (
            len(labels) < self.min_samples_split
            or _gini(labels) == 0.0
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node

        best = self._best_split(features, labels, rng)
        if best is None:
            return node
        feature, threshold = best
        mask = features[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(features[mask], labels[mask], depth + 1, rng)
        node.right = self._build(features[~mask], labels[~mask], depth + 1, rng)
        return node

    def _best_split(
        self, features: np.ndarray, labels: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float] | None:
        n, dim = features.shape
        candidates = rng.choice(dim, size=self._n_split_features(dim), replace=False)
        parent_impurity = _gini(labels)
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        for feature in candidates:
            column = features[:, feature]
            order = np.argsort(column, kind="mergesort")
            sorted_values = column[order]
            sorted_labels = labels[order]
            distinct = np.nonzero(np.diff(sorted_values))[0]
            if len(distinct) == 0:
                continue
            # Cumulative positives to the left of each candidate split point.
            cumulative_pos = np.cumsum(sorted_labels)
            total_pos = cumulative_pos[-1]
            left_counts = distinct + 1
            right_counts = n - left_counts
            left_pos = cumulative_pos[distinct]
            right_pos = total_pos - left_pos
            p_left = left_pos / left_counts
            p_right = right_pos / right_counts
            gini_left = 2.0 * p_left * (1.0 - p_left)
            gini_right = 2.0 * p_right * (1.0 - p_right)
            weighted = (left_counts * gini_left + right_counts * gini_right) / n
            gains = parent_impurity - weighted
            best_index = int(np.argmax(gains))
            if gains[best_index] > best_gain:
                best_gain = float(gains[best_index])
                split_position = distinct[best_index]
                threshold = 0.5 * (sorted_values[split_position] + sorted_values[split_position + 1])
                best = (int(feature), float(threshold))
        return best

    # -------------------------------------------------------------- inference
    def _leaf_for(self, row: np.ndarray) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = np.asarray(features, dtype=float)
        return np.array([self._leaf_for(row).prediction for row in features])

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

    # ---------------------------------------------------------- introspection
    @property
    def depth(self) -> int:
        """Maximum depth of any leaf in the fitted tree."""
        self._require_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return node.depth
            return max(walk(node.left), walk(node.right))

        return walk(self._root)

    def positive_paths(self) -> list[list[tuple[int, float, bool]]]:
        """Root-to-leaf paths that predict the *match* class.

        Each path is a list of ``(feature_index, threshold, goes_left)``
        triples; used by the interpretability analysis to convert trees into
        DNF formulae (Section 6.3).
        """
        self._require_fitted()
        paths: list[list[tuple[int, float, bool]]] = []

        def walk(node: _Node, prefix: list[tuple[int, float, bool]]) -> None:
            if node.is_leaf:
                if node.prediction >= 0.5:
                    paths.append(list(prefix))
                return
            walk(node.left, prefix + [(node.feature, node.threshold, True)])
            walk(node.right, prefix + [(node.feature, node.threshold, False)])

        walk(self._root, [])
        return paths
