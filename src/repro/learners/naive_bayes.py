"""Gaussian naive Bayes (extension learner).

Sarawagi & Bhamidipaty's early active-learning EM work combined
query-by-committee with naive Bayes classifiers; this learner lets the same
comparison be made inside this framework.  Similarity features are continuous
in [0, 1], so a Gaussian likelihood per feature/class is used.
"""

from __future__ import annotations

import numpy as np

from ..core.base import Learner, LearnerFamily
from ..exceptions import ConfigurationError

_VARIANCE_FLOOR = 1e-4


class GaussianNaiveBayes(Learner):
    """Per-class independent Gaussian likelihoods with class priors."""

    family = LearnerFamily.NON_LINEAR
    name = "naive_bayes"

    def __init__(self, variance_smoothing: float = 1e-3):
        super().__init__()
        if variance_smoothing <= 0:
            raise ConfigurationError("variance_smoothing must be positive")
        self.variance_smoothing = variance_smoothing
        self._means: np.ndarray | None = None
        self._variances: np.ndarray | None = None
        self._log_priors: np.ndarray | None = None
        self._classes = np.array([0, 1])

    def clone(self) -> "GaussianNaiveBayes":
        return GaussianNaiveBayes(variance_smoothing=self.variance_smoothing)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GaussianNaiveBayes":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if features.ndim != 2 or len(features) != len(labels):
            raise ConfigurationError("features must be 2-D and aligned with labels")
        n, dim = features.shape
        means = np.zeros((2, dim))
        variances = np.ones((2, dim))
        priors = np.zeros(2)
        global_variance = features.var(axis=0).mean() if n else 1.0
        for class_label in (0, 1):
            mask = labels == class_label
            count = int(mask.sum())
            priors[class_label] = (count + 1) / (n + 2)  # Laplace-smoothed prior
            if count > 0:
                means[class_label] = features[mask].mean(axis=0)
                variances[class_label] = features[mask].var(axis=0)
        variances = variances + self.variance_smoothing * max(global_variance, _VARIANCE_FLOOR)
        variances = np.maximum(variances, _VARIANCE_FLOOR)
        self._means = means
        self._variances = variances
        self._log_priors = np.log(priors)
        self._fitted = True
        return self

    def _joint_log_likelihood(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        scores = np.zeros((len(features), 2))
        for class_label in (0, 1):
            mean = self._means[class_label]
            variance = self._variances[class_label]
            log_likelihood = -0.5 * (
                np.log(2.0 * np.pi * variance) + (features - mean) ** 2 / variance
            ).sum(axis=1)
            scores[:, class_label] = log_likelihood + self._log_priors[class_label]
        return scores

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        joint = self._joint_log_likelihood(features)
        # Normalize in log space for numerical stability.
        joint -= joint.max(axis=1, keepdims=True)
        likelihood = np.exp(joint)
        return likelihood[:, 1] / likelihood.sum(axis=1)

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Log-odds of the match class (usable by margin-style selection)."""
        self._require_fitted()
        joint = self._joint_log_likelihood(features)
        return joint[:, 1] - joint[:, 0]

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) > 0.5).astype(np.int64)
