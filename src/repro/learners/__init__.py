"""Classifiers supported by the benchmark framework.

One learner per family from the paper's Figure 2:

* :class:`LinearSVM` — linear classifier (hinge loss, L2 regularization,
  Pegasos-style training), the framework's "Linear Classifier".
* :class:`NeuralNetwork` — non-convex non-linear classifier: one hidden layer
  with ReLU, batch normalization, dropout and a sigmoid output, trained with
  SGD + momentum on an L2 loss (Section 4.2.2).
* :class:`DecisionTree` / :class:`RandomForest` — tree-based classifiers in
  the Corleone configuration: unlimited depth, ``log2(Dim+1)`` random features
  per split (Section 4.1.1).
* :class:`RuleLearner` — rule-based classifier learning an ensemble (monotone
  DNF) of high-precision conjunctive rules over Boolean predicate features
  (Section 4.3, Qian et al.).
* :class:`DeepMatcherBaseline` — stand-in for the DeepMatcher supervised
  deep-learning baseline of Fig. 16 (deeper feed-forward network with a 3:1
  train/validation split and early stopping).
* :class:`BootstrapCommittee` — learner-agnostic bootstrap committee used by
  query-by-committee selection.
"""

from .linear_svm import LinearSVM
from .neural_network import NeuralNetwork
from .tree import DecisionTree
from .random_forest import RandomForest
from .rules import ConjunctiveRule, RuleLearner
from .deep_matcher import DeepMatcherBaseline
from .committee import BootstrapCommittee
from .logistic_regression import LogisticRegression
from .naive_bayes import GaussianNaiveBayes

__all__ = [
    "LinearSVM",
    "NeuralNetwork",
    "DecisionTree",
    "RandomForest",
    "ConjunctiveRule",
    "RuleLearner",
    "DeepMatcherBaseline",
    "BootstrapCommittee",
    "LogisticRegression",
    "GaussianNaiveBayes",
]
