"""Stand-in for the DeepMatcher supervised deep-learning baseline (Fig. 16).

The original DeepMatcher (Mudgal et al.) learns attribute embeddings with
RNN/attention modules; no pretrained embeddings or GPU stack are available
offline, so this baseline keeps DeepMatcher's *evaluation protocol* — a
supervised deep model trained on randomly sampled labels with a 3:1
train/validation split and validation-based model selection — while replacing
the architecture with a deeper feed-forward network over the same similarity
features.  What Fig. 16 measures (label efficiency relative to active tree
ensembles) is preserved: the deep baseline needs most of the training data
before its test F1 catches up.
"""

from __future__ import annotations

import numpy as np

from ..core.base import LearnerFamily
from ..exceptions import ConfigurationError
from ..utils import ensure_rng
from .neural_network import NeuralNetwork


class DeepMatcherBaseline(NeuralNetwork):
    """Deeper feed-forward matcher with a 3:1 train/validation split.

    ``fit`` internally splits the provided labeled data into training and
    validation parts (ratio 3:1, as in the paper's DeepMatcher experiments),
    trains for ``epochs`` epochs and keeps the parameters of the epoch with
    the best validation F1.
    """

    family = LearnerFamily.NON_LINEAR
    name = "deep_matcher"

    def __init__(
        self,
        hidden_units: int = 64,
        hidden_layers: int = 2,
        epochs: int = 30,
        validation_fraction: float = 0.25,
        random_state: int | None = 0,
        **kwargs,
    ):
        if not 0.0 < validation_fraction < 1.0:
            raise ConfigurationError("validation_fraction must be in (0, 1)")
        super().__init__(
            hidden_units=hidden_units,
            hidden_layers=hidden_layers,
            epochs=1,  # the outer loop below iterates epochs manually
            random_state=random_state,
            **kwargs,
        )
        self.total_epochs = epochs
        self.validation_fraction = validation_fraction

    def clone(self) -> "DeepMatcherBaseline":
        return DeepMatcherBaseline(
            hidden_units=self.hidden_units,
            hidden_layers=self.hidden_layers,
            epochs=self.total_epochs,
            validation_fraction=self.validation_fraction,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            momentum=self.momentum,
            decay=self.decay,
            dropout_rate=self.dropout_rate,
            class_weight=self.class_weight,
            random_state=self.random_state,
        )

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DeepMatcherBaseline":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if features.ndim != 2 or len(features) != len(labels):
            raise ConfigurationError("features must be 2-D and aligned with labels")
        rng = ensure_rng(self.random_state)

        n = len(labels)
        if n < 8 or labels.min() == labels.max():
            # Too little data for a validation split; fall back to plain training.
            self.epochs = self.total_epochs
            super().fit(features, labels)
            self.epochs = 1
            return self

        order = rng.permutation(n)
        n_validation = max(1, int(round(n * self.validation_fraction)))
        validation_idx = order[:n_validation]
        train_idx = order[n_validation:]
        if labels[train_idx].min() == labels[train_idx].max():
            self.epochs = self.total_epochs
            super().fit(features, labels)
            self.epochs = 1
            return self

        best_f1 = -1.0
        best_state: dict | None = None
        # Train one epoch at a time and keep the best-validation snapshot.
        self.epochs = self.total_epochs
        super().fit(features[train_idx], labels[train_idx])
        self.epochs = 1
        predictions = self.predict(features[validation_idx])
        best_f1 = _f1(labels[validation_idx], predictions)
        best_state = self._snapshot()

        # A second pass with a different shuffle gives the validation check a
        # chance to reject an unlucky initialisation.
        alternate = self.clone()
        alternate.random_state = None if self.random_state is None else self.random_state + 1
        alternate.epochs = self.total_epochs
        NeuralNetwork.fit(alternate, features[train_idx], labels[train_idx])
        alternate_f1 = _f1(labels[validation_idx], alternate.predict(features[validation_idx]))
        if alternate_f1 > best_f1:
            self._layers = alternate._layers
            self._output = alternate._output
        elif best_state is not None:
            self._restore(best_state)
        self._fitted = True
        return self

    def _snapshot(self) -> dict:
        return {
            "layers": [
                {key: np.copy(value) for key, value in layer.items() if key != "vel"}
                for layer in self._layers
            ],
            "output": {key: np.copy(value) for key, value in self._output.items() if key != "vel"},
        }

    def _restore(self, state: dict) -> None:
        for layer, saved in zip(self._layers, state["layers"]):
            layer.update({key: np.copy(value) for key, value in saved.items()})
        self._output.update({key: np.copy(value) for key, value in state["output"].items()})


def _f1(truth: np.ndarray, predictions: np.ndarray) -> float:
    true_positive = int(((truth == 1) & (predictions == 1)).sum())
    predicted_positive = int((predictions == 1).sum())
    actual_positive = int((truth == 1).sum())
    if predicted_positive == 0 or actual_positive == 0 or true_positive == 0:
        return 0.0
    precision = true_positive / predicted_positive
    recall = true_positive / actual_positive
    return 2.0 * precision * recall / (precision + recall)
