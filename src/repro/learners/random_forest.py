"""Random forest: the tree-based learner of the benchmark framework.

A random forest is a *learner-aware* committee: its decision trees, trained on
bootstrap samples during the training phase, double as the classifier
committee used by tree-based query-by-committee selection (Section 4.1.1), so
no additional committee-creation cost is paid at example-selection time.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..core.base import Learner, LearnerFamily
from ..exceptions import ConfigurationError
from ..utils import ensure_rng
from .tree import DecisionTree


class RandomForest(Learner):
    """Bagged ensemble of :class:`DecisionTree` classifiers.

    Parameters
    ----------
    n_trees:
        Committee size; the paper evaluates 2, 10 and 20 trees (Corleone
        uses 10, the paper's best results use 20).
    max_features, max_depth, min_samples_split:
        Passed to every tree; defaults are the Corleone settings.
    n_jobs:
        Worker threads for tree fitting.  ``1`` (default) trains trees
        serially off one shared RNG stream — the historical, paper-faithful
        path.  Any ``n_jobs > 1`` switches to per-tree child RNGs spawned
        deterministically from ``random_state``, because tree fitting
        interleaves data-dependent draws and cannot share one stream across
        threads: the forest is then bit-identical for every ``n_jobs > 1``
        (independent of thread scheduling), but is a *different* — equally
        seeded — forest than the ``n_jobs=1`` one.  The active learning loop
        sets ``n_jobs`` from ``ActiveLearningConfig.committee_jobs``.
    """

    family = LearnerFamily.TREE
    name = "random_forest"

    def __init__(
        self,
        n_trees: int = 10,
        max_features: str | int = "log2",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        random_state: int | None = 0,
        n_jobs: int = 1,
    ):
        super().__init__()
        if n_trees <= 0:
            raise ConfigurationError("n_trees must be positive")
        if n_jobs < 1:
            raise ConfigurationError("n_jobs must be at least 1")
        self.n_trees = n_trees
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.trees: list[DecisionTree] = []
        self.name = f"random_forest({n_trees})"

    def clone(self) -> "RandomForest":
        return RandomForest(
            n_trees=self.n_trees,
            max_features=self.max_features,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            random_state=self.random_state,
            n_jobs=self.n_jobs,
        )

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForest":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.ndim != 2 or len(features) != len(labels):
            raise ConfigurationError("features must be 2-D and aligned with labels")
        rng = ensure_rng(self.random_state)
        if self.n_jobs == 1:
            self.trees = [self._fit_tree(features, labels, rng) for _ in range(self.n_trees)]
        else:
            # Tree fitting consumes data-dependent draws, so parallel trees
            # each get their own child stream spawned from the forest RNG —
            # deterministic for any worker count and schedule.
            child_rngs = rng.spawn(self.n_trees)
            with ThreadPoolExecutor(max_workers=min(self.n_jobs, self.n_trees)) as pool:
                self.trees = list(
                    pool.map(lambda child: self._fit_tree(features, labels, child), child_rngs)
                )
        self._fitted = True
        return self

    def _fit_tree(
        self, features: np.ndarray, labels: np.ndarray, rng: np.random.Generator
    ) -> DecisionTree:
        n = len(labels)
        indices = rng.integers(0, n, size=n)
        # Guarantee the bootstrap sample sees both classes whenever the
        # training data has both; otherwise trees degenerate to constants.
        if labels.min() != labels.max():
            if labels[indices].min() == labels[indices].max():
                minority = 1.0 if labels[indices].max() == 0.0 else 0.0
                minority_positions = np.flatnonzero(labels == minority)
                indices[0] = int(rng.choice(minority_positions))
        tree = DecisionTree(
            max_features=self.max_features,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            random_state=self.random_state,
        )
        tree.fit(features[indices], labels[indices], rng=rng)
        return tree

    def committee_predictions(self, features: np.ndarray) -> np.ndarray:
        """0/1 predictions of every tree: shape ``(n_trees, n_examples)``.

        This is the learner-aware committee consumed by tree-based QBC.
        """
        self._require_fitted()
        return np.vstack([tree.predict(features) for tree in self.trees])

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Fraction of trees voting for the match class."""
        return self.committee_predictions(features).mean(axis=0)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

    # ---------------------------------------------------------- introspection
    @property
    def max_tree_depth(self) -> int:
        """Depth of the deepest tree (the Fig. 18b interpretability metric)."""
        self._require_fitted()
        return max(tree.depth for tree in self.trees)

    def positive_paths(self) -> list[list[tuple[int, float, bool]]]:
        """Union of the match-predicting root-to-leaf paths of all trees."""
        self._require_fitted()
        paths: list[list[tuple[int, float, bool]]] = []
        for tree in self.trees:
            paths.extend(tree.positive_paths())
        return paths
