"""Linear support vector machine trained with Pegasos-style sub-gradient descent.

This is the framework's representative of the *linear classifier* family.  The
decision function ``w·x + b`` doubles as the margin used by margin-based
example selection and by the blocking enhancement of Section 5.1 (the weight
vector's largest-magnitude dimensions are the blocking dimensions).
"""

from __future__ import annotations

import numpy as np

from ..core.base import Learner, LearnerFamily
from ..exceptions import ConfigurationError
from ..utils import ensure_rng


class LinearSVM(Learner):
    """L2-regularized linear SVM (hinge loss) for binary EM classification.

    Parameters
    ----------
    regularization:
        The Pegasos ``λ`` (inverse of the usual ``C``); larger values shrink
        the weights more aggressively.
    epochs:
        Number of full passes of projected sub-gradient descent.
    class_weight:
        ``"balanced"`` re-weights the hinge loss inversely to class frequency
        (EM data is heavily skewed towards non-matches); ``None`` uses uniform
        weights.
    random_state:
        Seed controlling the (mild) stochasticity of initialisation.

    Setting the ``warm_start`` flag makes :meth:`fit` resume from the current
    ``weights``/``bias`` (when already fitted on the same dimensionality)
    instead of re-initializing; the Pegasos step-size schedule still restarts,
    acting as a fine-tuning pass over the grown labeled set.
    """

    family = LearnerFamily.LINEAR
    name = "linear_svm"
    supports_warm_start = True

    def __init__(
        self,
        regularization: float = 1e-3,
        epochs: int = 150,
        class_weight: str | None = "balanced",
        random_state: int | None = 0,
    ):
        super().__init__()
        if regularization <= 0:
            raise ConfigurationError("regularization must be positive")
        if epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        if class_weight not in (None, "balanced"):
            raise ConfigurationError("class_weight must be None or 'balanced'")
        self.regularization = regularization
        self.epochs = epochs
        self.class_weight = class_weight
        self.random_state = random_state
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0

    def clone(self) -> "LinearSVM":
        return LinearSVM(
            regularization=self.regularization,
            epochs=self.epochs,
            class_weight=self.class_weight,
            random_state=self.random_state,
        )

    def _sample_weights(self, labels: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones_like(labels, dtype=float)
        n = len(labels)
        n_pos = max(1, int(labels.sum()))
        n_neg = max(1, n - int(labels.sum()))
        weights = np.where(labels == 1, n / (2.0 * n_pos), n / (2.0 * n_neg))
        return weights

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if features.ndim != 2 or len(features) != len(labels):
            raise ConfigurationError("features must be 2-D and aligned with labels")
        rng = ensure_rng(self.random_state)

        n, dim = features.shape
        signed = np.where(labels == 1, 1.0, -1.0)
        sample_weights = self._sample_weights(labels)

        if self._can_resume(dim):
            weights = self.weights.copy()
            bias = self.bias
        else:
            weights = rng.normal(scale=1e-3, size=dim)
            bias = 0.0
        lam = self.regularization

        if signed.min() == signed.max():
            # Degenerate single-class training set: predict that class always.
            self.weights = np.zeros(dim)
            self.bias = float(signed[0])
            self._fitted = True
            return self

        for epoch in range(1, self.epochs + 1):
            step = 1.0 / (lam * epoch)
            scores = features @ weights + bias
            violating = (signed * scores) < 1.0
            if violating.any():
                coeffs = (sample_weights * signed * violating) / n
                gradient_w = lam * weights - features.T @ coeffs
                gradient_b = -float(coeffs.sum())
            else:
                gradient_w = lam * weights
                gradient_b = 0.0
            weights -= step * gradient_w
            bias -= step * gradient_b
            # Pegasos projection step keeps ||w|| bounded by 1/sqrt(lam).
            norm = np.linalg.norm(weights)
            limit = 1.0 / np.sqrt(lam)
            if norm > limit:
                weights *= limit / norm

        self.weights = weights
        self.bias = float(bias)
        self._fitted = True
        return self

    def _can_resume(self, dim: int) -> bool:
        return self.warm_start and self._fitted and self.weights is not None and len(self.weights) == dim

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = np.asarray(features, dtype=float)
        return features @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.decision_scores(features) > 0.0).astype(np.int64)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        scores = self.decision_scores(features)
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -30.0, 30.0)))
