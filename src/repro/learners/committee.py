"""Learner-agnostic bootstrap committees for query-by-committee selection.

Following Mozafari et al. (and Fig. 3 of the paper), QBC draws ``B`` bootstrap
samples with replacement from the cumulative labeled data, trains one copy of
the classifier on each sample, and measures disagreement among the committee
members' label predictions on the unlabeled pool.
"""

from __future__ import annotations

import numpy as np

from ..core.base import Learner
from ..exceptions import ConfigurationError
from ..utils import ensure_rng


class BootstrapCommittee:
    """A committee of clones of a base learner trained on bootstrap resamples."""

    def __init__(self, base_learner: Learner, size: int):
        if size < 2:
            raise ConfigurationError("a committee needs at least 2 members")
        self.base_learner = base_learner
        self.size = size
        self.members: list[Learner] = []

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> "BootstrapCommittee":
        """Train all committee members on bootstrap samples of the labeled data."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if len(features) != len(labels) or len(labels) == 0:
            raise ConfigurationError("labeled data must be non-empty and aligned")
        rng = ensure_rng(rng)
        n = len(labels)
        has_both_classes = labels.min() != labels.max()
        self.members = []
        for _ in range(self.size):
            indices = rng.integers(0, n, size=n)
            if has_both_classes and labels[indices].min() == labels[indices].max():
                # Bootstrap samples drawn from skewed EM data can easily miss
                # the minority class; force one minority example in.
                minority = 1 if labels[indices].max() == 0 else 0
                minority_positions = np.flatnonzero(labels == minority)
                indices[int(rng.integers(0, n))] = int(rng.choice(minority_positions))
            member = self.base_learner.clone()
            member.fit(features[indices], labels[indices])
            self.members.append(member)
        return self

    def predictions(self, features: np.ndarray) -> np.ndarray:
        """0/1 label predictions of every member: shape ``(size, n_examples)``."""
        if not self.members:
            raise ConfigurationError("committee has not been fitted")
        return np.vstack([member.predict(features) for member in self.members])

    def variance(self, features: np.ndarray) -> np.ndarray:
        """Per-example disagreement ``(P/C)·(1 − P/C)`` from Mozafari et al.

        ``P`` is the number of members voting for the match class and ``C`` is
        the committee size; the value is maximal (0.25) when the committee is
        split evenly.
        """
        votes = self.predictions(features)
        positive_fraction = votes.mean(axis=0)
        return positive_fraction * (1.0 - positive_fraction)
