"""Learner-agnostic bootstrap committees for query-by-committee selection.

Following Mozafari et al. (and Fig. 3 of the paper), QBC draws ``B`` bootstrap
samples with replacement from the cumulative labeled data, trains one copy of
the classifier on each sample, and measures disagreement among the committee
members' label predictions on the unlabeled pool.

Committee fitting parallelizes over members (``n_jobs`` worker threads) and
is **bit-identical to serial for any** ``n_jobs``: all bootstrap index draws
are taken from the shared RNG upfront, in the exact order the serial loop
would take them, and each member's fit then depends only on its own pre-drawn
sample and the base learner's own seed — so thread scheduling cannot affect
any prediction.  Threads (not processes) are used because members train on
shared read-only numpy arrays and the heavy lifting happens inside numpy.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..core.base import Learner
from ..exceptions import ConfigurationError
from ..utils import ensure_rng


class BootstrapCommittee:
    """A committee of clones of a base learner trained on bootstrap resamples."""

    def __init__(self, base_learner: Learner, size: int, n_jobs: int = 1):
        if size < 2:
            raise ConfigurationError("a committee needs at least 2 members")
        if n_jobs < 1:
            raise ConfigurationError("n_jobs must be at least 1")
        self.base_learner = base_learner
        self.size = size
        self.n_jobs = n_jobs
        self.members: list[Learner] = []

    def _draw_bootstrap_indices(
        self, labels: np.ndarray, rng: np.random.Generator
    ) -> list[np.ndarray]:
        """All members' bootstrap samples, drawn serially from the shared RNG."""
        n = len(labels)
        has_both_classes = labels.min() != labels.max()
        samples = []
        for _ in range(self.size):
            indices = rng.integers(0, n, size=n)
            if has_both_classes and labels[indices].min() == labels[indices].max():
                # Bootstrap samples drawn from skewed EM data can easily miss
                # the minority class; force one minority example in.
                minority = 1 if labels[indices].max() == 0 else 0
                minority_positions = np.flatnonzero(labels == minority)
                indices[int(rng.integers(0, n))] = int(rng.choice(minority_positions))
            samples.append(indices)
        return samples

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> "BootstrapCommittee":
        """Train all committee members on bootstrap samples of the labeled data."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if len(features) != len(labels) or len(labels) == 0:
            raise ConfigurationError("labeled data must be non-empty and aligned")
        rng = ensure_rng(rng)
        samples = self._draw_bootstrap_indices(labels, rng)
        members = [self.base_learner.clone() for _ in samples]

        def fit_member(member_and_indices):
            member, indices = member_and_indices
            return member.fit(features[indices], labels[indices])

        if self.n_jobs == 1:
            self.members = [fit_member(pair) for pair in zip(members, samples)]
        else:
            with ThreadPoolExecutor(max_workers=min(self.n_jobs, self.size)) as pool:
                self.members = list(pool.map(fit_member, zip(members, samples)))
        return self

    def predictions(self, features: np.ndarray) -> np.ndarray:
        """0/1 label predictions of every member: shape ``(size, n_examples)``."""
        if not self.members:
            raise ConfigurationError("committee has not been fitted")
        return np.vstack([member.predict(features) for member in self.members])

    def variance(self, features: np.ndarray) -> np.ndarray:
        """Per-example disagreement ``(P/C)·(1 − P/C)`` from Mozafari et al.

        ``P`` is the number of members voting for the match class and ``C`` is
        the committee size; the value is maximal (0.25) when the committee is
        split evenly.
        """
        votes = self.predictions(features)
        positive_fraction = votes.mean(axis=0)
        return positive_fraction * (1.0 - positive_fraction)
