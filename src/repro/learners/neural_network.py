"""Feed-forward neural network (the non-convex non-linear classifier).

Architecture and training follow Section 4.2.2 of the paper: a single hidden
layer with ReLU activation, batch normalization of the hidden representation,
dropout of half the hidden units, an affine output whose scalar value is the
*margin*, and a sigmoid that turns the margin into a match probability.
Training uses an L2 loss and SGD with momentum (learning rate 0.001, decay
0.99, momentum 0.95, 50 epochs, mini-batches of 8).
"""

from __future__ import annotations

import numpy as np

from ..core.base import Learner, LearnerFamily
from ..exceptions import ConfigurationError
from ..utils import ensure_rng

_BN_EPSILON = 1e-5


class NeuralNetwork(Learner):
    """Single-hidden-layer neural network with batch norm and dropout.

    Parameters
    ----------
    hidden_units:
        Number of hidden neurons (``h`` in the paper).
    epochs, batch_size, learning_rate, momentum, decay:
        SGD-with-momentum hyper-parameters; defaults match the paper.
    dropout_rate:
        Fraction of hidden units dropped during training (0.5 in the paper).
    class_weight:
        ``"balanced"`` re-weights the per-example loss inversely to class
        frequency, mitigating the heavy EM class skew.
    hidden_layers:
        Number of identically-sized hidden layers; the paper's model uses 1,
        the DeepMatcher stand-in uses more.

    Setting the ``warm_start`` flag makes :meth:`fit` resume SGD from the
    current parameters (weights, batch-norm statistics and momentum
    velocities) when the input dimensionality is unchanged, instead of
    re-initializing the network for every fit.
    """

    family = LearnerFamily.NON_LINEAR
    name = "neural_network"
    supports_warm_start = True

    def __init__(
        self,
        hidden_units: int = 32,
        epochs: int = 50,
        batch_size: int = 8,
        learning_rate: float = 0.001,
        momentum: float = 0.95,
        decay: float = 0.99,
        dropout_rate: float = 0.5,
        class_weight: str | None = "balanced",
        hidden_layers: int = 1,
        random_state: int | None = 0,
    ):
        super().__init__()
        if hidden_units <= 0 or epochs <= 0 or batch_size <= 0 or hidden_layers <= 0:
            raise ConfigurationError("hidden_units, epochs, batch_size, hidden_layers must be positive")
        if not 0.0 <= dropout_rate < 1.0:
            raise ConfigurationError("dropout_rate must be in [0, 1)")
        if class_weight not in (None, "balanced"):
            raise ConfigurationError("class_weight must be None or 'balanced'")
        self.hidden_units = hidden_units
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.decay = decay
        self.dropout_rate = dropout_rate
        self.class_weight = class_weight
        self.hidden_layers = hidden_layers
        self.random_state = random_state
        self._layers: list[dict] = []
        self._output: dict = {}

    def clone(self) -> "NeuralNetwork":
        return NeuralNetwork(
            hidden_units=self.hidden_units,
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            momentum=self.momentum,
            decay=self.decay,
            dropout_rate=self.dropout_rate,
            class_weight=self.class_weight,
            hidden_layers=self.hidden_layers,
            random_state=self.random_state,
        )

    # ------------------------------------------------------------------ setup
    def _init_parameters(self, dim: int, rng: np.random.Generator) -> None:
        self._layers = []
        fan_in = dim
        for _ in range(self.hidden_layers):
            layer = {
                "W": rng.normal(scale=np.sqrt(2.0 / fan_in), size=(fan_in, self.hidden_units)),
                "b": np.zeros(self.hidden_units),
                "gamma": np.ones(self.hidden_units),
                "beta": np.zeros(self.hidden_units),
                "running_mean": np.zeros(self.hidden_units),
                "running_var": np.ones(self.hidden_units),
            }
            layer["vel"] = {key: np.zeros_like(layer[key]) for key in ("W", "b", "gamma", "beta")}
            self._layers.append(layer)
            fan_in = self.hidden_units
        self._output = {
            "W": rng.normal(scale=np.sqrt(1.0 / fan_in), size=(fan_in, 1)),
            "b": np.zeros(1),
        }
        self._output["vel"] = {key: np.zeros_like(self._output[key]) for key in ("W", "b")}

    def _sample_weights(self, labels: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones_like(labels, dtype=float)
        n = len(labels)
        n_pos = max(1, int(labels.sum()))
        n_neg = max(1, n - int(labels.sum()))
        return np.where(labels == 1, n / (2.0 * n_pos), n / (2.0 * n_neg))

    # --------------------------------------------------------------- training
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "NeuralNetwork":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.ndim != 2 or len(features) != len(labels):
            raise ConfigurationError("features must be 2-D and aligned with labels")
        rng = ensure_rng(self.random_state)
        n, dim = features.shape
        resume = (
            self.warm_start
            and self._fitted
            and self._layers
            and self._layers[0]["W"].shape[0] == dim
        )
        if not resume:
            self._init_parameters(dim, rng)
        sample_weights = self._sample_weights(labels)

        learning_rate = self.learning_rate
        batch_size = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                if len(batch) < 2:
                    continue  # batch norm needs at least two samples
                self._sgd_step(
                    features[batch], labels[batch], sample_weights[batch], learning_rate, rng
                )
            learning_rate *= self.decay

        self._fitted = True
        return self

    def _sgd_step(self, x, y, weights, learning_rate, rng) -> None:
        caches = []
        activation = x
        for layer in self._layers:
            pre = activation @ layer["W"] + layer["b"]
            relu = np.maximum(pre, 0.0)
            mean = relu.mean(axis=0)
            var = relu.var(axis=0)
            layer["running_mean"] = 0.9 * layer["running_mean"] + 0.1 * mean
            layer["running_var"] = 0.9 * layer["running_var"] + 0.1 * var
            normalized = (relu - mean) / np.sqrt(var + _BN_EPSILON)
            scaled = layer["gamma"] * normalized + layer["beta"]
            if self.dropout_rate > 0.0:
                mask = (rng.random(scaled.shape) >= self.dropout_rate) / (1.0 - self.dropout_rate)
            else:
                mask = np.ones_like(scaled)
            dropped = scaled * mask
            caches.append(
                {
                    "input": activation,
                    "pre": pre,
                    "relu": relu,
                    "mean": mean,
                    "var": var,
                    "normalized": normalized,
                    "mask": mask,
                }
            )
            activation = dropped

        margin = activation @ self._output["W"] + self._output["b"]
        probability = _sigmoid(margin).ravel()

        # L2 loss: 0.5 * w_i * (p_i - y_i)^2, back-propagated through the sigmoid.
        error = weights * (probability - y)
        d_margin = (error * probability * (1.0 - probability))[:, None] / len(y)

        grad_out_w = activation.T @ d_margin
        grad_out_b = d_margin.sum(axis=0)
        d_activation = d_margin @ self._output["W"].T

        self._apply_update(self._output, {"W": grad_out_w, "b": grad_out_b}, learning_rate)

        for layer, cache in zip(reversed(self._layers), reversed(caches)):
            d_scaled = d_activation * cache["mask"]
            d_gamma = (d_scaled * cache["normalized"]).sum(axis=0)
            d_beta = d_scaled.sum(axis=0)
            d_normalized = d_scaled * layer["gamma"]
            # Batch-norm backward pass.
            m = cache["relu"].shape[0]
            inv_std = 1.0 / np.sqrt(cache["var"] + _BN_EPSILON)
            centered = cache["relu"] - cache["mean"]
            d_var = (d_normalized * centered * -0.5 * inv_std**3).sum(axis=0)
            d_mean = (-d_normalized * inv_std).sum(axis=0) + d_var * (-2.0 * centered.mean(axis=0))
            d_relu = d_normalized * inv_std + d_var * 2.0 * centered / m + d_mean / m
            d_pre = d_relu * (cache["pre"] > 0.0)
            grad_w = cache["input"].T @ d_pre
            grad_b = d_pre.sum(axis=0)
            d_activation = d_pre @ layer["W"].T
            self._apply_update(
                layer, {"W": grad_w, "b": grad_b, "gamma": d_gamma, "beta": d_beta}, learning_rate
            )

    def _apply_update(self, parameters: dict, gradients: dict, learning_rate: float) -> None:
        for key, gradient in gradients.items():
            velocity = parameters["vel"][key]
            velocity *= self.momentum
            velocity -= learning_rate * gradient
            parameters[key] = parameters[key] + velocity
            parameters["vel"][key] = velocity

    # -------------------------------------------------------------- inference
    def _forward(self, features: np.ndarray) -> np.ndarray:
        activation = np.asarray(features, dtype=float)
        for layer in self._layers:
            pre = activation @ layer["W"] + layer["b"]
            relu = np.maximum(pre, 0.0)
            normalized = (relu - layer["running_mean"]) / np.sqrt(layer["running_var"] + _BN_EPSILON)
            activation = layer["gamma"] * normalized + layer["beta"]
        margin = activation @ self._output["W"] + self._output["b"]
        return margin.ravel()

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """The affine output of the network — the margin of Section 4.2.2."""
        self._require_fitted()
        return self._forward(features)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_scores(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) > 0.5).astype(np.int64)


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(values, -30.0, 30.0)))
