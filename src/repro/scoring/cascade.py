"""The score cascade: staged extraction + provable pruning per chunk.

:class:`CascadeScorer` is the chunk-scoring engine shared by
``MatchingPipeline.match`` and ``MatchIndex.query``/``query_batch``/
``resolve``.  Per chunk of candidate pairs it runs up to three stages:

* **Stage A** — cheap feature columns only (set/bag/counter measures),
  batched per unique value pair through the extractor's partial API.
* **Stage B** — for sign-analyzed linear predictors, an optimistic decision
  value per candidate: cheap columns at their exact values, expensive
  columns at per-pair upper bounds where the weight is positive and at 0
  (the universal lower bound of every measure) where it is negative.
  Candidates whose optimistic value cannot reach the active floor are
  pruned without ever computing an expensive column.
* **Stage C** — expensive columns for survivors only, through the batched
  DP kernels; the survivors' complete rows go to the real predictor, so
  survivor scores and predictions are bit-identical to the uncascaded path.

Pruning only engages when an explicit floor exists (a caller ``min_score``,
``accept_only=True`` from entity resolution, or mode ``"on"``'s implicit
acceptance threshold) *and* the predictor is provably linear; otherwise the
cascade still uses staged extraction but scores every candidate.  See
``docs/scoring.md`` for the exact contract.
"""

from __future__ import annotations

import numpy as np

from ..core.config import CascadeConfig
from ..datasets.base import CandidatePair
from ..features.extractor import FeatureExtractor
from ..telemetry import MetricsRegistry, span
from .linear import analyze_predictor

__all__ = ["CascadeScorer"]


def _normalize_floors(floors, count: int) -> np.ndarray | None:
    """Per-pair score floors as a float array (NaN = no floor), or None."""
    if floors is None:
        return None
    if np.isscalar(floors):
        return np.full(count, float(floors))
    arr = np.array(
        [np.nan if floor is None else float(floor) for floor in floors]
    )
    if len(arr) != count:
        raise ValueError("floors must align with the chunk")
    if np.isnan(arr).all():
        return None
    return arr


class CascadeScorer:
    """Scores candidate chunks through the cascade; thread-safe counters.

    Parameters
    ----------
    predictor:
        The trained predictor (any learner or ensemble with
        ``predict`` / ``predict_proba``).
    extractor:
        The feature extractor.  Staging requires the continuous
        :class:`FeatureExtractor`; any other kind (e.g. the Boolean rule
        extractor) always takes the legacy full path.
    config:
        :class:`~repro.core.config.CascadeConfig`; ``None`` means defaults
        (mode ``"auto"``).
    registry:
        Optional :class:`~repro.telemetry.MetricsRegistry` backing the
        cascade counters.  Default is a fresh private registry, so a
        scorer built per ``match()`` call still reports per-call counts;
        :class:`~repro.index.MatchIndex` injects its own registry so the
        counters accumulate (and export) for the index's lifetime.
    """

    def __init__(
        self,
        predictor,
        extractor,
        config: CascadeConfig | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.predictor = predictor
        self.extractor = extractor
        self.config = config or CascadeConfig()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._seen = self.metrics.counter(
            "repro_cascade_candidates_total", "Candidate pairs entering the cascade"
        )
        self._pruned = self.metrics.counter(
            "repro_cascade_pruned_total",
            "Candidates pruned at the optimistic bound (Stage B)",
        )
        self._scored = self.metrics.counter(
            "repro_cascade_fully_scored_total",
            "Candidates fully scored by the real predictor",
        )
        self._staged = self.config.mode != "off" and isinstance(
            extractor, FeatureExtractor
        )
        self.analysis = analyze_predictor(predictor) if self._staged else None
        if self.analysis is not None and len(self.analysis.weights) != extractor.dim:
            # Dimensionality mismatch (shouldn't happen for a consistent
            # pipeline) — never prune on weights we can't line up.
            self.analysis = None

    # ------------------------------------------------------------- counters
    # Counter state lives in the registry (each series has its own lock);
    # the attribute names survive as read-only views for callers and docs.
    @property
    def candidates_seen(self) -> int:
        return self._seen.value

    @property
    def pruned_at_bound(self) -> int:
        return self._pruned.value

    @property
    def fully_scored(self) -> int:
        return self._scored.value

    def _count(self, seen: int, pruned: int, scored: int) -> None:
        if seen:
            self._seen.inc(seen)
        if pruned:
            self._pruned.inc(pruned)
        if scored:
            self._scored.inc(scored)

    def merge_counts(self, seen: int, pruned: int, scored: int) -> None:
        """Fold counters produced elsewhere (worker processes) into this one."""
        self._count(seen, pruned, scored)

    def stats(self) -> dict:
        """Counter snapshot for observability surfaces (index stats, CLI).

        A view over the backing registry — the same numbers the daemon's
        ``GET /metrics`` exports as ``repro_cascade_*_total``.
        """
        return {
            "mode": self.config.mode,
            "candidates_seen": self._seen.value,
            "pruned_at_bound": self._pruned.value,
            "fully_scored": self._scored.value,
        }

    # -------------------------------------------------------------- scoring
    def score_chunk(
        self,
        chunk: list[CandidatePair],
        floors=None,
        accept_only: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Score one chunk: ``(kept_rows, scores, predictions)``.

        ``kept_rows`` indexes into ``chunk``; ``scores``/``predictions``
        align with it.  Rows absent from ``kept_rows`` were *provably*
        below every active floor (a per-pair entry of ``floors``, and/or
        the acceptance threshold when ``accept_only`` is set or mode is
        ``"on"``).  Kept rows carry scores and predictions bit-identical
        to the uncascaded path, independent of chunking.
        """
        count = len(chunk)
        if count == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0),
                np.zeros(0, dtype=np.int64),
            )
        floor_values = _normalize_floors(floors, count)
        accept_prune = accept_only or self.config.mode == "on"
        if not self._staged:
            scores, predictions = self._score_legacy(chunk)
            self._count(count, 0, count)
            return np.arange(count, dtype=np.int64), scores, predictions
        if self.analysis is None or (not accept_prune and floor_values is None):
            # Staged extraction without pruning: every column through the
            # batched kernels, every row scored.
            with span("cascade.extract") as extract_span:
                plan = self.extractor.begin_partial(chunk)
                plan.fill_all()
                extract_span.annotate(candidates=count)
            with span("cascade.predict"):
                scores, predictions = self._predict(plan.matrix)
            self._count(count, 0, count)
            return np.arange(count, dtype=np.int64), scores, predictions

        extractor = self.extractor
        analysis = self.analysis
        with span("cascade.stage_a") as stage_a:
            plan = extractor.begin_partial(chunk)
            plan.fill(extractor.cheap_suite_indices)
            stage_a.annotate(candidates=count)
        with span("cascade.stage_b") as stage_b:
            weights = analysis.weights
            cheap_part = (
                plan.matrix[:, extractor.cheap_column_indices]
                @ weights[extractor.cheap_column_indices]
            )
            gains = np.maximum(weights[extractor.expensive_column_indices], 0.0)
            optimistic = (
                cheap_part
                + plan.upper_bounds() @ gains
                + analysis.bias
                + analysis.slack
            )
            prune = np.zeros(count, dtype=bool)
            if accept_prune:
                prune |= optimistic <= 0.0
            if floor_values is not None:
                # Probability-space comparison: sigmoid∘clip is monotone, so
                # the optimistic probability dominates the true one.
                optimistic_proba = 1.0 / (
                    1.0 + np.exp(-np.clip(optimistic, -30.0, 30.0))
                )
                floored = ~np.isnan(floor_values)
                prune[floored] |= optimistic_proba[floored] < floor_values[floored]
            kept = np.flatnonzero(~prune).astype(np.int64)
            stage_b.annotate(pruned=count - len(kept))
        with span("cascade.stage_c") as stage_c:
            if len(kept):
                plan.fill(extractor.expensive_suite_indices, rows=kept)
                matrix = plan.matrix
                if len(kept) < count:
                    # Predict over the full-size matrix with pruned rows
                    # zero-filled and their outputs discarded.  BLAS
                    # matrix-vector kernels are row-independent but not
                    # row-count-independent (the <4-row tail uses a different
                    # accumulation order), so scoring a survivor *submatrix*
                    # could flip last-ulp bits vs the uncascaded path.
                    # Keeping the row count — the dot products are
                    # nanoseconds; the savings are in the skipped expensive
                    # feature columns — makes survivor scores structurally
                    # bit-identical.
                    matrix[np.isnan(matrix)] = 0.0
                scores_all, predictions_all = self._predict(matrix)
                scores = scores_all[kept]
                predictions = predictions_all[kept]
            else:
                scores = np.zeros(0)
                predictions = np.zeros(0, dtype=np.int64)
            stage_c.annotate(survivors=len(kept))
        self._count(count, count - len(kept), len(kept))
        return kept, scores, predictions

    def _predict(self, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        scores = np.asarray(self.predictor.predict_proba(matrix), dtype=float)
        predictions = np.asarray(self.predictor.predict(matrix), dtype=np.int64)
        return scores, predictions

    def _score_legacy(self, chunk) -> tuple[np.ndarray, np.ndarray]:
        """Mode "off" / non-continuous extractors: the original scalar path."""
        result = self.extractor.extract(chunk)
        matrix = result.matrix if hasattr(result, "matrix") else result
        return self._predict(matrix)
