"""Cascaded candidate scoring: cheap features first, provable pruning, batched
expensive kernels for survivors.

See ``docs/scoring.md`` for the cascade contract and bound derivations.
"""

from .cascade import CascadeScorer
from .linear import LinearAnalysis, analyze_predictor

__all__ = ["CascadeScorer", "LinearAnalysis", "analyze_predictor"]
