"""Sign analysis of linear predictors for provable score bounds.

A predictor qualifies for bound-based pruning iff its acceptance decision is
a monotone function of a single linear form ``w·x + b`` whose weights we can
read.  Both linear-family learners qualify:

* :class:`~repro.learners.linear_svm.LinearSVM` accepts iff ``w·x + b > 0``.
* :class:`~repro.learners.logistic_regression.LogisticRegression` accepts
  iff ``sigmoid(clip(w·x + b)) > 0.5``; sigmoid and clip are monotone
  nondecreasing (also in float arithmetic), so an upper bound on the
  decision yields an upper bound on the probability, and a decision bound
  ``<= 0`` proves the probability is ``<= 0.5``.

Everything else (trees, forests, neural networks, rule learners,
committees/ensembles) returns ``None`` and takes the exact full-extraction
fallback — correctness never depends on calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..learners.linear_svm import LinearSVM
from ..learners.logistic_regression import LogisticRegression

__all__ = ["LinearAnalysis", "analyze_predictor"]


@dataclass
class LinearAnalysis:
    """Readable weights of a linear predictor plus a float-safety slack.

    ``slack`` absorbs the non-associativity of the float dot product and the
    rounding of the bound expressions: the optimistic decision is compared
    as ``U + slack`` against the threshold.  The slack is ~1e-9 relative to
    the weight scale — five orders of magnitude above the worst-case float64
    dot-product error for these dimensions, and far too small to cost any
    measurable pruning power.
    """

    weights: np.ndarray
    bias: float
    slack: float


def analyze_predictor(predictor) -> LinearAnalysis | None:
    """Extract the linear form of a predictor, or ``None`` if not provable."""
    if not isinstance(predictor, (LinearSVM, LogisticRegression)):
        return None
    weights = getattr(predictor, "weights", None)
    if weights is None:
        return None
    weights = np.asarray(weights, dtype=float)
    bias = float(predictor.bias)
    slack = 1e-9 * (1.0 + float(np.abs(weights).sum()) + abs(bias))
    return LinearAnalysis(weights=weights, bias=bias, slack=slack)
