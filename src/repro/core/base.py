"""Base classes for learners and example selectors plus their compatibility rules.

This module encodes the class hierarchy of Figure 2 in the paper: every
classifier extends :class:`Learner`, every selection strategy extends
:class:`ExampleSelector`, and each selector declares which learner families it
is compatible with.  Learner-agnostic selectors (query-by-committee over
bootstrap committees) accept every family; learner-aware selectors (margin,
LFP/LFN, tree-committee QBC) accept only the families they were designed for.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..exceptions import IncompatibleSelectorError, NotFittedError


class LearnerFamily(str, Enum):
    """The four classifier families supported by the benchmark framework."""

    LINEAR = "linear"
    NON_LINEAR = "non_linear"
    TREE = "tree"
    RULE = "rule"


class Learner(ABC):
    """Base class of all classifiers in the framework.

    A learner consumes a dense feature matrix (continuous features for
    linear/non-linear/tree learners, Boolean features for rule learners) and
    binary labels (1 = match, 0 = non-match).
    """

    #: Classifier family; selectors use this for compatibility checks.
    family: LearnerFamily

    #: Human readable name used in reports.
    name: str = "learner"

    #: Whether this learner can resume :meth:`fit` from its previous
    #: parameters.  Learners that can, honour the ``warm_start`` instance
    #: flag: when set and the feature dimensionality is unchanged, ``fit``
    #: continues from the current parameters instead of re-initializing.
    supports_warm_start: bool = False

    def __init__(self) -> None:
        self._fitted = False
        #: Opt-in flag read by warm-start-capable learners (see
        #: ``supports_warm_start``); a no-op for everything else.
        self.warm_start = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted yet")

    @abstractmethod
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "Learner":
        """Train the model on the cumulative labeled data, replacing any prior fit."""

    @abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict 0/1 labels for each row of ``features``."""

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive (match) class for each row.

        The default implementation maps hard predictions to {0, 1}; learners
        with calibrated scores override this.
        """
        return self.predict(features).astype(float)

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Real-valued decision scores (margins) used by margin-based selection.

        By convention positive scores favour the match class.  Learners that
        do not expose a margin raise :class:`NotImplementedError`; selectors
        requiring margins declare the corresponding compatibility.
        """
        raise NotImplementedError(f"{type(self).__name__} does not expose decision scores")

    @abstractmethod
    def clone(self) -> "Learner":
        """A fresh, unfitted copy with identical hyper-parameters.

        Used by the learner-agnostic QBC selector to train bootstrap
        committees without disturbing the primary model.
        """


@dataclass
class SelectionResult:
    """Outcome of one example-selection call.

    Attributes
    ----------
    indices:
        Positions (into the unlabeled feature matrix) of the selected examples.
    committee_creation_time:
        Seconds spent building a classifier committee (zero for learner-aware
        strategies, which reuse the trained model).
    scoring_time:
        Seconds spent scoring unlabeled examples and picking the batch.
    scored_examples:
        How many unlabeled examples were actually scored (blocking-based
        strategies skip some).
    diagnostics:
        Optional per-strategy extra information (e.g. variance histogram).
    """

    indices: list[int]
    committee_creation_time: float = 0.0
    scoring_time: float = 0.0
    scored_examples: int = 0
    diagnostics: dict = field(default_factory=dict)

    @property
    def selection_time(self) -> float:
        """Total example-selection latency (committee creation + scoring)."""
        return self.committee_creation_time + self.scoring_time


class ExampleSelector(ABC):
    """Base class of all example-selection strategies."""

    #: Learner families this selector can be combined with.
    compatible_families: frozenset[LearnerFamily] = frozenset()

    #: Human readable name used in reports.
    name: str = "selector"

    #: True for strategies that reuse the trained learner (margin, tree QBC,
    #: LFP/LFN), False for strategies that build their own committee.
    learner_aware: bool = False

    def validate_learner(self, learner: Learner) -> None:
        """Raise :class:`IncompatibleSelectorError` when the combination is invalid."""
        check_compatibility(learner, self)

    @abstractmethod
    def select(
        self,
        learner: Learner,
        labeled_features: np.ndarray,
        labeled_labels: np.ndarray,
        unlabeled_features: np.ndarray,
        batch_size: int,
        rng: np.random.Generator,
    ) -> SelectionResult:
        """Choose up to ``batch_size`` informative unlabeled examples.

        ``learner`` is the model trained on the cumulative labeled data at the
        start of the current iteration.  Implementations must not mutate the
        labeled arrays.
        """


def check_compatibility(learner: Learner, selector: ExampleSelector) -> None:
    """Validate a learner/selector combination against the framework's registry.

    Mirrors the class-hierarchy compatibility constraints of Figure 2: e.g.
    margin-based selection applies to linear and non-convex non-linear
    classifiers only, LFP/LFN only to rule learners, tree-committee QBC only
    to tree ensembles, while bootstrap QBC applies to everything.
    """
    if not selector.compatible_families:
        raise IncompatibleSelectorError(
            f"selector {type(selector).__name__} declares no compatible learner families"
        )
    if learner.family not in selector.compatible_families:
        compatible = sorted(f.value for f in selector.compatible_families)
        raise IncompatibleSelectorError(
            f"selector {selector.name!r} is not compatible with learner family "
            f"{learner.family.value!r} (compatible families: {compatible})"
        )
