"""The unified active-learning framework (the paper's primary contribution).

The framework mirrors Figure 1a/2 of the paper: a :class:`Learner` base class
with one subclass per classifier family, an :class:`ExampleSelector` base
class with learner-agnostic and learner-aware subclasses, a compatibility
registry that records which selectors may be combined with which learners, an
Oracle abstraction (perfect or noisy), and the
:class:`~repro.core.loop.ActiveLearningLoop` engine that ties them together
and produces per-iteration quality/latency/label metrics.
"""

from .base import (
    ExampleSelector,
    Learner,
    LearnerFamily,
    SelectionResult,
    check_compatibility,
)
from .config import (
    ActiveLearningConfig,
    BlockingConfig,
    CascadeConfig,
    IndexConfig,
    PipelineConfig,
)
from .evaluation import EvaluationResult, evaluate_predictions
from .pools import LabeledPool, PairPool
from .oracle import NoisyOracle, Oracle, PerfectOracle
from .noise import MajorityVoteOracle
from .results import ActiveLearningRun, IterationRecord
from .loop import ActiveLearningLoop
from .ensemble import ActiveEnsemble, ActiveEnsembleLoop

__all__ = [
    "Learner",
    "LearnerFamily",
    "ExampleSelector",
    "SelectionResult",
    "check_compatibility",
    "ActiveLearningConfig",
    "BlockingConfig",
    "CascadeConfig",
    "IndexConfig",
    "PipelineConfig",
    "EvaluationResult",
    "evaluate_predictions",
    "LabeledPool",
    "PairPool",
    "Oracle",
    "PerfectOracle",
    "NoisyOracle",
    "MajorityVoteOracle",
    "IterationRecord",
    "ActiveLearningRun",
    "ActiveLearningLoop",
    "ActiveEnsemble",
    "ActiveEnsembleLoop",
]
