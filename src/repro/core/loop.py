"""The active-learning engine shared by all experiments.

One iteration performs: (1) train the learner on the cumulative labeled data,
(2) evaluate it (by default on all post-blocking pairs — the paper's
*progressive F1*; optionally on a held-out test set for the supervised-
comparison experiments), (3) ask the example selector for the next batch of
ambiguous unlabeled examples, (4) query the Oracle for their labels and add
them to the labeled pool.  Training, committee-creation and example-scoring
times are recorded per iteration (the latency metric of Section 3).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..utils import Stopwatch, ensure_rng
from .base import ExampleSelector, Learner, check_compatibility
from .config import ActiveLearningConfig
from .evaluation import evaluate_predictions
from .oracle import Oracle
from .pools import LabeledPool, PairPool
from .results import ActiveLearningRun, IterationRecord


class ActiveLearningLoop:
    """Runs active learning for one (learner, selector, dataset) combination.

    Parameters
    ----------
    learner, selector:
        The classifier and example-selection strategy; their compatibility is
        validated against the framework registry (Fig. 2 of the paper).
    pool:
        All post-blocking candidate pairs with features and hidden ground truth.
    oracle:
        Label source (perfect or noisy).
    config:
        Loop hyper-parameters (seed size, batch size, termination criteria).
    evaluation_features / evaluation_labels:
        Optional held-out test set.  When omitted, evaluation runs on the full
        pool, yielding the paper's progressive F1.
    dataset_name:
        Recorded in the run result for reporting.
    iteration_callback:
        Optional hook called once per iteration with ``(learner, record)``
        after training and evaluation; a returned dictionary is merged into
        the iteration record's ``extras`` (used, e.g., by the interpretability
        experiment to measure the model's DNF size over time).
    """

    def __init__(
        self,
        learner: Learner,
        selector: ExampleSelector,
        pool: PairPool,
        oracle: Oracle,
        config: ActiveLearningConfig | None = None,
        evaluation_features: np.ndarray | None = None,
        evaluation_labels: np.ndarray | None = None,
        dataset_name: str = "unknown",
        iteration_callback=None,
    ):
        check_compatibility(learner, selector)
        self.learner = learner
        self.selector = selector
        self.pool = pool
        self.oracle = oracle
        self.config = config or ActiveLearningConfig()
        if (evaluation_features is None) != (evaluation_labels is None):
            raise ConfigurationError(
                "evaluation_features and evaluation_labels must be provided together"
            )
        self.evaluation_features = evaluation_features
        self.evaluation_labels = evaluation_labels
        self.dataset_name = dataset_name
        self.iteration_callback = iteration_callback

    # ------------------------------------------------------------------ run
    def run(self) -> ActiveLearningRun:
        config = self.config
        rng = ensure_rng(config.random_state)
        labeled = LabeledPool(self.pool)
        labeled.seed(config.seed_size, self.oracle, rng=rng)

        run = ActiveLearningRun(
            learner_name=self.learner.name,
            selector_name=self.selector.name,
            dataset_name=self.dataset_name,
            metadata={
                "pool_size": len(self.pool),
                "pool_class_skew": self.pool.class_skew,
                "seed_size": len(labeled),
                "batch_size": config.batch_size,
            },
        )

        iteration = 0
        terminated_because = "max_iterations"
        while True:
            iteration += 1

            train_watch = Stopwatch()
            with train_watch.timing():
                self.learner.fit(labeled.labeled_features(), labeled.labeled_labels())

            evaluation = self._evaluate()

            unlabeled_indices = labeled.unlabeled_indices
            selection = None
            if len(unlabeled_indices) > 0 and not self._quality_reached(evaluation.f1):
                selection = self.selector.select(
                    learner=self.learner,
                    labeled_features=labeled.labeled_features(),
                    labeled_labels=labeled.labeled_labels(),
                    unlabeled_features=self.pool.features[unlabeled_indices],
                    batch_size=min(config.batch_size, len(unlabeled_indices)),
                    rng=rng,
                )

            record = IterationRecord(
                iteration=iteration,
                n_labels=len(labeled),
                evaluation=evaluation,
                train_time=train_watch.elapsed,
                committee_creation_time=selection.committee_creation_time if selection else 0.0,
                scoring_time=selection.scoring_time if selection else 0.0,
                scored_examples=selection.scored_examples if selection else 0,
                selected=len(selection.indices) if selection else 0,
            )
            if self.iteration_callback is not None:
                extras = self.iteration_callback(self.learner, record)
                if extras:
                    record.extras.update(extras)
            run.append(record)

            if self._quality_reached(evaluation.f1):
                terminated_because = "target_f1"
                break
            if len(unlabeled_indices) == 0:
                terminated_because = "unlabeled_exhausted"
                break
            if selection is None or not selection.indices:
                terminated_because = "selector_exhausted"
                break
            if self._converged(run):
                terminated_because = "converged"
                break
            if config.max_iterations is not None and iteration >= config.max_iterations:
                terminated_because = "max_iterations"
                break

            chosen_pool_indices = [int(unlabeled_indices[i]) for i in selection.indices]
            labels = self.oracle.label_batch(chosen_pool_indices)
            labeled.add_batch(chosen_pool_indices, labels)

        run.terminated_because = terminated_because
        return run

    # -------------------------------------------------------------- internals
    def _evaluate(self):
        if self.evaluation_features is not None:
            features = self.evaluation_features
            truth = self.evaluation_labels
        else:
            features = self.pool.features
            truth = self.pool.true_labels
        predictions = self.learner.predict(features)
        return evaluate_predictions(truth, predictions)

    def _quality_reached(self, f1: float) -> bool:
        return self.config.target_f1 is not None and f1 >= self.config.target_f1

    def _converged(self, run: ActiveLearningRun) -> bool:
        window = self.config.convergence_window
        if window <= 0 or len(run.records) < window + 1:
            return False
        recent = [record.f1 for record in run.records[-(window + 1):]]
        return max(recent) - min(recent) <= self.config.convergence_tolerance
