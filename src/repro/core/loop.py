"""The active-learning engine shared by all experiments.

One iteration performs: (1) train the learner on the cumulative labeled data,
(2) evaluate it (by default on all post-blocking pairs — the paper's
*progressive F1*; optionally on a held-out test set for the supervised-
comparison experiments), (3) ask the example selector for the next batch of
ambiguous unlabeled examples, (4) query the Oracle for their labels and add
them to the labeled pool.  Training, committee-creation and example-scoring
times are recorded per iteration (the latency metric of Section 3).

The labeled pool's derived views (features, labels, unlabeled indices) are
materialized once per iteration and shared between training and selection.
Termination reasons are checked in a fixed priority order — ``target_f1``,
``unlabeled_exhausted``, ``converged``, ``max_iterations``, then
``selector_exhausted`` — *before* example selection, so the loop never scores
a batch it is about to discard (and never pays committee-creation/scoring
latency on an iteration that cannot consume the batch).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..utils import Stopwatch, ensure_rng
from .base import ExampleSelector, Learner, check_compatibility
from .config import ActiveLearningConfig
from .evaluation import evaluate_predictions
from .oracle import Oracle
from .pools import LabeledPool, PairPool
from .results import ActiveLearningRun, IterationRecord

#: Rows per prediction chunk during evaluation.  Chunking bounds the peak
#: memory of learner-internal temporaries (committee vote matrices, neural
#: activations) on large pools; predictions are row-wise deterministic, so
#: the chunked result is bit-identical to one whole-pool call.
EVALUATION_CHUNK_SIZE = 32_768


class ActiveLearningLoop:
    """Runs active learning for one (learner, selector, dataset) combination.

    Parameters
    ----------
    learner, selector:
        The classifier and example-selection strategy; their compatibility is
        validated against the framework registry (Fig. 2 of the paper).
    pool:
        All post-blocking candidate pairs with features and hidden ground truth.
    oracle:
        Label source (perfect or noisy).
    config:
        Loop hyper-parameters (seed size, batch size, termination criteria,
        warm starting, evaluation cadence, committee parallelism).
    evaluation_features / evaluation_labels:
        Optional held-out test set.  When omitted, evaluation runs on the full
        pool, yielding the paper's progressive F1.
    dataset_name:
        Recorded in the run result for reporting.
    iteration_callback:
        Optional hook called once per iteration with ``(learner, record)``
        after training and evaluation; a returned dictionary is merged into
        the iteration record's ``extras`` (used, e.g., by the interpretability
        experiment to measure the model's DNF size over time).
    """

    def __init__(
        self,
        learner: Learner,
        selector: ExampleSelector,
        pool: PairPool,
        oracle: Oracle,
        config: ActiveLearningConfig | None = None,
        evaluation_features: np.ndarray | None = None,
        evaluation_labels: np.ndarray | None = None,
        dataset_name: str = "unknown",
        iteration_callback=None,
    ):
        check_compatibility(learner, selector)
        self.learner = learner
        self.selector = selector
        self.pool = pool
        self.oracle = oracle
        self.config = config or ActiveLearningConfig()
        if (evaluation_features is None) != (evaluation_labels is None):
            raise ConfigurationError(
                "evaluation_features and evaluation_labels must be provided together"
            )
        self.evaluation_features = evaluation_features
        self.evaluation_labels = evaluation_labels
        self.dataset_name = dataset_name
        self.iteration_callback = iteration_callback

    # ------------------------------------------------------------------ run
    def run(self) -> ActiveLearningRun:
        config = self.config
        rng = ensure_rng(config.random_state)
        labeled = LabeledPool(self.pool)
        labeled.seed(config.seed_size, self.oracle, rng=rng)
        self._apply_engine_options()

        run = ActiveLearningRun(
            learner_name=self.learner.name,
            selector_name=self.selector.name,
            dataset_name=self.dataset_name,
            metadata={
                "pool_size": len(self.pool),
                "pool_class_skew": self.pool.class_skew,
                "seed_size": len(labeled),
                "batch_size": config.batch_size,
            },
        )
        # Non-default engine options are stamped into the metadata; defaults
        # are omitted so default-config runs serialize exactly as before.
        if config.warm_start:
            run.metadata["warm_start"] = True
        if config.evaluation_interval != 1:
            run.metadata["evaluation_interval"] = config.evaluation_interval
        if config.committee_jobs != 1:
            # Recorded because n_jobs > 1 changes RandomForest trajectories
            # (per-tree child RNGs) — stored runs must be distinguishable.
            run.metadata["committee_jobs"] = config.committee_jobs

        iteration = 0
        evaluation = None
        # Convergence is judged over *fresh* evaluations only: with an
        # evaluation cadence, reused records would pad the window with
        # duplicated F1 values and make it fire early.
        fresh_f1_history: list[float] = []
        while True:
            iteration += 1

            # One materialization per iteration, shared by training and
            # selection (the pool caches it; repeated accessors are free).
            labeled_features = labeled.labeled_features()
            labeled_labels = labeled.labeled_labels()

            train_watch = Stopwatch()
            with train_watch.timing():
                self.learner.fit(labeled_features, labeled_labels)

            unlabeled_indices = labeled.unlabeled_indices
            exhausted = len(unlabeled_indices) == 0
            max_iterations_reached = (
                config.max_iterations is not None and iteration >= config.max_iterations
            )
            # Evaluate on the cadence, and always on iterations that are known
            # to terminate; skipped iterations reuse the previous evaluation.
            fresh = (
                (iteration - 1) % config.evaluation_interval == 0
                or exhausted
                or max_iterations_reached
            )
            if fresh:
                evaluation = self._evaluate()

            terminated_because = None
            if fresh and self._quality_reached(evaluation.f1):
                terminated_because = "target_f1"
            elif exhausted:
                terminated_because = "unlabeled_exhausted"
            elif fresh and self._converged(fresh_f1_history, evaluation.f1):
                terminated_because = "converged"
            elif max_iterations_reached:
                terminated_because = "max_iterations"
            if fresh:
                fresh_f1_history.append(evaluation.f1)

            selection = None
            if terminated_because is None:
                selection = self.selector.select(
                    learner=self.learner,
                    labeled_features=labeled_features,
                    labeled_labels=labeled_labels,
                    unlabeled_features=self.pool.features[unlabeled_indices],
                    batch_size=min(config.batch_size, len(unlabeled_indices)),
                    rng=rng,
                )
                if not selection.indices:
                    terminated_because = "selector_exhausted"
                    if not fresh:  # the final iteration is always evaluated
                        evaluation = self._evaluate()
                        fresh = True

            record = IterationRecord(
                iteration=iteration,
                n_labels=len(labeled),
                evaluation=evaluation,
                train_time=train_watch.elapsed,
                committee_creation_time=selection.committee_creation_time if selection else 0.0,
                scoring_time=selection.scoring_time if selection else 0.0,
                scored_examples=selection.scored_examples if selection else 0,
                selected=len(selection.indices) if selection else 0,
                extras={} if fresh else {"evaluation_reused": True},
            )
            if self.iteration_callback is not None:
                extras = self.iteration_callback(self.learner, record)
                if extras:
                    record.extras.update(extras)
            run.append(record)

            if terminated_because is not None:
                break

            chosen_pool_indices = [int(unlabeled_indices[i]) for i in selection.indices]
            labels = self.oracle.label_batch(chosen_pool_indices)
            labeled.add_batch(chosen_pool_indices, labels)

        run.terminated_because = terminated_because
        return run

    # -------------------------------------------------------------- internals
    def _apply_engine_options(self) -> None:
        """Propagate engine-level config onto the learner and selector."""
        config = self.config
        if config.warm_start and getattr(self.learner, "supports_warm_start", False):
            self.learner.warm_start = True
        if config.committee_jobs != 1:
            if hasattr(self.selector, "n_jobs"):
                self.selector.n_jobs = config.committee_jobs
            if hasattr(self.learner, "n_jobs"):
                self.learner.n_jobs = config.committee_jobs

    def _evaluate(self):
        if self.evaluation_features is not None:
            features = self.evaluation_features
            truth = self.evaluation_labels
        else:
            features = self.pool.features
            truth = self.pool.true_labels
        predictions = predict_chunked(self.learner, features)
        return evaluate_predictions(truth, predictions)

    def _quality_reached(self, f1: float) -> bool:
        return self.config.target_f1 is not None and f1 >= self.config.target_f1

    def _converged(self, fresh_f1_history: list[float], current_f1: float) -> bool:
        """Whether ``current_f1`` plus the trailing fresh-F1 window is flat."""
        window = self.config.convergence_window
        if window <= 0 or len(fresh_f1_history) < window:
            return False
        recent = fresh_f1_history[-window:] + [current_f1]
        return max(recent) - min(recent) <= self.config.convergence_tolerance


def predict_chunked(
    learner: Learner, features: np.ndarray, chunk_size: int = EVALUATION_CHUNK_SIZE
) -> np.ndarray:
    """Predict in row chunks, bounding learner-internal temporary memory.

    Bit-identical to ``learner.predict(features)``: every learner in the
    framework predicts each row independently.
    """
    if len(features) <= chunk_size:
        return learner.predict(features)
    return np.concatenate(
        [
            learner.predict(features[start : start + chunk_size])
            for start in range(0, len(features), chunk_size)
        ]
    )
