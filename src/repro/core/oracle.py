"""Oracles: the source of labels during active learning.

The paper distinguishes a *perfect* Oracle (the available ground truth) from
an *imperfect* Oracle that flips the true label with a fixed probability,
which emulates crowd-sourced labeling without error-correction (Section 6.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..exceptions import ConfigurationError, OracleError
from ..utils import ensure_rng
from .pools import PairPool


class Oracle(ABC):
    """Provides labels for pool examples and counts how many were requested."""

    def __init__(self) -> None:
        self.queries = 0

    @abstractmethod
    def _label(self, index: int) -> int:
        """Label one pool example (implementation hook)."""

    def label(self, index: int) -> int:
        """Label one example, counting the query."""
        self.queries += 1
        return self._label(index)

    def label_batch(self, indices: list[int]) -> list[int]:
        """Label a batch of examples."""
        return [self.label(index) for index in indices]


class PerfectOracle(Oracle):
    """Returns the hidden ground-truth label of the pool."""

    def __init__(self, pool: PairPool):
        super().__init__()
        self.pool = pool

    def _label(self, index: int) -> int:
        index = int(index)
        if index < 0 or index >= len(self.pool):
            raise OracleError(f"no ground truth for example {index}")
        return int(self.pool.true_labels[index])


class NoisyOracle(Oracle):
    """Flips the true label with a fixed probability (crowd-sourcing emulation).

    Per the paper, the perturbation is applied whenever the random draw falls
    within the noise probability — a harsher criterion than real crowdsourced
    settings, which would correct noise via majority voting.  Labels are
    memoised so asking twice about the same pair returns the same answer.
    """

    def __init__(self, pool: PairPool, noise_probability: float, rng: np.random.Generator | int | None = None):
        super().__init__()
        if not 0.0 <= noise_probability <= 1.0:
            raise ConfigurationError("noise_probability must be in [0, 1]")
        self.pool = pool
        self.noise_probability = noise_probability
        self._rng = ensure_rng(rng)
        self._memo: dict[int, int] = {}

    def _label(self, index: int) -> int:
        index = int(index)
        if index < 0 or index >= len(self.pool):
            raise OracleError(f"no ground truth for example {index}")
        if index in self._memo:
            return self._memo[index]
        truth = int(self.pool.true_labels[index])
        if self._rng.random() < self.noise_probability:
            answer = 1 - truth
        else:
            answer = truth
        self._memo[index] = answer
        return answer
