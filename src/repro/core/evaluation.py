"""Quality metrics: precision, recall and F1 on the match class.

Matching pairs carry label 1 and non-matching pairs label 0; precision,
recall and F1 are computed with respect to the match class, exactly as in the
paper's quality metric (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class EvaluationResult:
    """Precision/recall/F1 plus the underlying confusion counts."""

    precision: float
    recall: float
    f1: float
    accuracy: float
    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def support(self) -> int:
        """Number of evaluated pairs."""
        return (
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "precision": float(self.precision),
            "recall": float(self.recall),
            "f1": float(self.f1),
            "accuracy": float(self.accuracy),
            "true_positives": int(self.true_positives),
            "false_positives": int(self.false_positives),
            "true_negatives": int(self.true_negatives),
            "false_negatives": int(self.false_negatives),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EvaluationResult":
        return cls(**data)


def evaluate_predictions(truth: np.ndarray, predictions: np.ndarray) -> EvaluationResult:
    """Compute match-class precision, recall, F1 and accuracy.

    Follows the usual convention for degenerate cases: precision is 0 when
    nothing was predicted positive, recall is 0 when there are no true
    matches, and F1 is 0 whenever precision + recall is 0.  An empty
    candidate set (e.g. blocking pruned everything at inference time) is a
    degenerate case too, not an error: all metrics and counts are 0.
    """
    truth = np.asarray(truth).astype(int)
    predictions = np.asarray(predictions).astype(int)
    if truth.shape != predictions.shape:
        raise ConfigurationError("truth and predictions must have the same shape")
    if truth.size == 0:
        return EvaluationResult(
            precision=0.0,
            recall=0.0,
            f1=0.0,
            accuracy=0.0,
            true_positives=0,
            false_positives=0,
            true_negatives=0,
            false_negatives=0,
        )

    true_positives = int(((truth == 1) & (predictions == 1)).sum())
    false_positives = int(((truth == 0) & (predictions == 1)).sum())
    true_negatives = int(((truth == 0) & (predictions == 0)).sum())
    false_negatives = int(((truth == 1) & (predictions == 0)).sum())

    predicted_positive = true_positives + false_positives
    actual_positive = true_positives + false_negatives
    precision = true_positives / predicted_positive if predicted_positive else 0.0
    recall = true_positives / actual_positive if actual_positive else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if (precision + recall) > 0.0
        else 0.0
    )
    accuracy = (true_positives + true_negatives) / truth.size

    return EvaluationResult(
        precision=precision,
        recall=recall,
        f1=f1,
        accuracy=accuracy,
        true_positives=true_positives,
        false_positives=false_positives,
        true_negatives=true_negatives,
        false_negatives=false_negatives,
    )
