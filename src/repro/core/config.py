"""Configuration of an active-learning run and of the blocking step."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class BlockingConfig:
    """Which blocking strategy to run, and with which parameters.

    Hashable (usable in preparation cache keys) and decoupled from the
    blocker classes themselves: :func:`repro.harness.preparation.build_blocker`
    resolves it against :mod:`repro.blocking.registry` at preparation time.

    Attributes
    ----------
    method:
        Registry name of the strategy (``"jaccard"``, ``"minhash_lsh"``,
        ``"sorted_neighborhood"``).
    threshold:
        Similarity cutoff, with method-specific meaning: token-Jaccard
        threshold for ``jaccard``, verification threshold for
        ``minhash_lsh``; ignored by ``sorted_neighborhood``.  ``None`` falls
        back to the dataset spec's per-dataset blocking threshold (for
        ``jaccard``) or the strategy default.
    params:
        Extra keyword arguments for the blocker constructor as a sorted
        tuple of ``(name, value)`` items — use :meth:`create` to build from
        plain kwargs.
    """

    method: str = "jaccard"
    threshold: float | None = None
    params: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    @classmethod
    def create(
        cls, method: str = "jaccard", threshold: float | None = None, **params
    ) -> "BlockingConfig":
        """Build a config from plain keyword arguments.

        >>> BlockingConfig.create("minhash_lsh", threshold=0.2, bands=32)
        BlockingConfig(method='minhash_lsh', threshold=0.2, params=(('bands', 32),))

        Sequence-valued parameters (e.g. ``keys=[...]`` for the
        sorted-neighborhood blocker) are canonicalized to tuples so the
        config stays hashable for cache keys.
        """
        canonical = {
            name: tuple(value) if isinstance(value, (list, set)) else value
            for name, value in params.items()
        }
        return cls(method=method, threshold=threshold, params=tuple(sorted(canonical.items())))

    def __post_init__(self) -> None:
        if not self.method:
            raise ConfigurationError("blocking method must be a non-empty name")
        if self.threshold is not None and not 0.0 < self.threshold <= 1.0:
            raise ConfigurationError("blocking threshold must be in (0, 1] or None")

    def kwargs(self) -> dict:
        """The ``params`` tuple as a plain keyword dict."""
        return dict(self.params)

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "method": self.method,
            "threshold": self.threshold,
            "params": [[name, list(value) if isinstance(value, tuple) else value]
                       for name, value in self.params],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BlockingConfig":
        params = tuple(
            (name, tuple(value) if isinstance(value, list) else value)
            for name, value in data.get("params", [])
        )
        return cls(method=data["method"], threshold=data.get("threshold"), params=params)


@dataclass(frozen=True)
class IndexConfig:
    """LSH and maintenance parameters of a :class:`~repro.index.MatchIndex`.

    The first four attributes mirror the
    :class:`~repro.blocking.minhash_lsh.MinHashLSHBlocker` parameters — an
    index built with an ``IndexConfig`` produces candidate sets bit-identical
    to a batch blocking pass with :meth:`blocking_config` (the shared
    :class:`~repro.blocking.signatures.SignatureComputer` guarantees the
    signatures agree).

    Attributes
    ----------
    num_perm / bands / shingle_size / seed:
        MinHash signature length, LSH band count, character shingle length
        and permutation seed (see the blocker docs for the S-curve trade-off).
    verify_threshold / exact_verify:
        Optional verification pass over bucket collisions, identical in
        semantics to the blocker's: estimated-Jaccard filtering with a 2σ
        recall slack, optionally upgraded to exact shingle-Jaccard.
    compaction_threshold:
        When the tombstoned fraction of index rows exceeds this value after a
        ``remove``, the index compacts automatically (rebuilding its arrays
        and posting lists without the dead rows).  1.0 disables
        auto-compaction; ``compact()`` can always be called explicitly.
    shards:
        Hash partitions of the band index.  Query results are bit-identical
        for every value (candidates are a shard-order-free union); raising it
        buys smaller per-shard posting files (in-place saves rewrite only
        dirty shards) and parallel fan-out for very large corpora.  Keep the
        default of 1 until the corpus approaches millions of records.
    resolve_min_score:
        Default ``min_score`` of :meth:`~repro.index.MatchIndex.resolve`:
        pairs must be predicted matches scoring at least this to be merged
        into one entity.  ``None`` accepts every predicted match.
    """

    num_perm: int = 128
    bands: int = 64
    shingle_size: int = 3
    verify_threshold: float | None = None
    exact_verify: bool = False
    seed: int = 0
    compaction_threshold: float = 0.5
    resolve_min_score: float | None = None
    shards: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.shards <= 4096:
            raise ConfigurationError("shards must be between 1 and 4096")
        if self.num_perm < 2:
            raise ConfigurationError("num_perm must be at least 2")
        if self.bands < 1 or self.num_perm % self.bands != 0:
            raise ConfigurationError(
                f"bands must divide num_perm ({self.num_perm}); got bands={self.bands}"
            )
        if self.shingle_size < 1:
            raise ConfigurationError("shingle_size must be positive")
        if self.verify_threshold is not None and not 0.0 < self.verify_threshold <= 1.0:
            raise ConfigurationError("verify_threshold must be in (0, 1] or None")
        if not 0.0 < self.compaction_threshold <= 1.0:
            raise ConfigurationError("compaction_threshold must be in (0, 1]")
        if self.resolve_min_score is not None and not 0.0 <= self.resolve_min_score <= 1.0:
            raise ConfigurationError("resolve_min_score must be in [0, 1] or None")

    def blocking_config(self) -> BlockingConfig:
        """The equivalent batch :class:`BlockingConfig` (``minhash_lsh``).

        A :class:`~repro.pipeline.MatchingPipeline` whose resolved blocking is
        this config blocks exactly the candidate pairs the index retrieves —
        the equivalence contract the index test suite asserts.
        """
        return BlockingConfig.create(
            "minhash_lsh",
            num_perm=self.num_perm,
            bands=self.bands,
            shingle_size=self.shingle_size,
            seed=self.seed,
            verify_threshold=self.verify_threshold,
            exact_verify=self.exact_verify,
        )

    @classmethod
    def from_blocking(cls, blocking: BlockingConfig, **overrides) -> "IndexConfig":
        """Derive an index config from a ``minhash_lsh`` blocking config.

        Used when wrapping a pipeline that was trained with LSH blocking, so
        the index inherits the exact signature parameters the pipeline blocks
        with at inference time.
        """
        if blocking.method != "minhash_lsh":
            raise ConfigurationError(
                f"IndexConfig.from_blocking requires a 'minhash_lsh' blocking "
                f"config, got {blocking.method!r}"
            )
        params = blocking.kwargs()
        known = {
            name: params[name]
            for name in ("num_perm", "bands", "shingle_size", "seed", "exact_verify")
            if name in params
        }
        verify = params.get("verify_threshold", blocking.threshold)
        known.setdefault("verify_threshold", verify)
        known.update(overrides)
        return cls(**known)

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips through :meth:`from_dict`).

        ``shards`` is emitted only when non-default, so configs (and their
        hashes / golden pins) from before sharding are byte-stable.
        """
        body = {
            "num_perm": self.num_perm,
            "bands": self.bands,
            "shingle_size": self.shingle_size,
            "verify_threshold": self.verify_threshold,
            "exact_verify": self.exact_verify,
            "seed": self.seed,
            "compaction_threshold": self.compaction_threshold,
            "resolve_min_score": self.resolve_min_score,
        }
        if self.shards != 1:
            body["shards"] = self.shards
        return body

    @classmethod
    def from_dict(cls, data: dict) -> "IndexConfig":
        return cls(**data)


@dataclass(frozen=True)
class CascadeConfig:
    """Score-cascade behavior of the inference hot path (see docs/scoring.md).

    Attributes
    ----------
    mode:
        ``"auto"`` (default): staged extraction (cheap feature columns
        first, expensive ones through the batched kernels) always runs;
        provable bound-pruning additionally engages whenever the caller
        supplies an explicit score floor (``min_score``) and the trained
        predictor is a sign-analyzable linear model.  Output is always
        bit-identical to ``"off"`` for the same arguments.

        ``"on"``: like ``"auto"``, but the learner's own acceptance
        threshold also acts as an implicit floor — candidates the linear
        model provably cannot accept are dropped from the output entirely
        (match-only serving).  Accepted pairs and survivor scores remain
        bit-identical to the uncascaded path.

        ``"off"``: the legacy scalar extraction path, no staging, no
        counters.
    """

    mode: str = "auto"

    def __post_init__(self) -> None:
        if self.mode not in ("off", "on", "auto"):
            raise ConfigurationError(
                f"cascade mode must be 'off', 'on' or 'auto'; got {self.mode!r}"
            )

    def to_dict(self) -> dict:
        return {"mode": self.mode}

    @classmethod
    def from_dict(cls, data: dict) -> "CascadeConfig":
        return cls(**data)


@dataclass(frozen=True)
class ActiveLearningConfig:
    """Hyper-parameters of the active-learning loop (Section 6 defaults).

    Attributes
    ----------
    seed_size:
        Number of initially labeled examples (30 in the paper).
    batch_size:
        Examples selected and labeled per iteration (10 in the paper).
    max_iterations:
        Upper bound on labeling iterations; ``None`` runs until another
        termination criterion fires.
    target_f1:
        Stop as soon as the evaluation F1 reaches this value (the paper stops
        when an approach achieves a near-perfect progressive F1).  ``None``
        disables the criterion (used for noisy-Oracle experiments, which run
        until the unlabeled pool is exhausted).
    convergence_window / convergence_tolerance:
        A run is also considered converged when the F1 changed by less than
        ``convergence_tolerance`` over the last ``convergence_window``
        iterations; set the window to 0 to disable.
    random_state:
        Seed for the loop's own randomness (seed sampling, tie-breaking).
    warm_start:
        When True, learners that support it (``supports_warm_start``) resume
        each iteration's fit from the previous iteration's parameters instead
        of re-initializing from scratch.  Off by default: warm starting
        changes (typically shortens) the optimization path, so trajectories
        differ from the paper's cold-retrain protocol.
    evaluation_interval:
        Evaluate the model every this-many iterations (1 = every iteration,
        the paper's protocol).  Skipped iterations reuse the previous
        evaluation in their records (flagged with ``extras["evaluation_reused"]``);
        the terminating iteration is always freshly evaluated, and the
        ``target_f1`` / convergence criteria only fire on fresh evaluations.
    committee_jobs:
        Worker threads for committee training (QBC bootstrap committees and
        random-forest tree fitting).  1 = serial.  Bootstrap committees are
        bit-identical to serial for any value; see ``docs/engine.md`` for the
        random-forest determinism contract.
    """

    seed_size: int = 30
    batch_size: int = 10
    max_iterations: int | None = 100
    target_f1: float | None = 0.98
    convergence_window: int = 0
    convergence_tolerance: float = 0.002
    random_state: int | None = 0
    warm_start: bool = False
    evaluation_interval: int = 1
    committee_jobs: int = 1

    def __post_init__(self) -> None:
        if self.seed_size < 2:
            raise ConfigurationError("seed_size must be at least 2")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be positive or None")
        if self.target_f1 is not None and not 0.0 < self.target_f1 <= 1.0:
            raise ConfigurationError("target_f1 must be in (0, 1] or None")
        if self.convergence_window < 0:
            raise ConfigurationError("convergence_window must be non-negative")
        if self.convergence_tolerance < 0:
            raise ConfigurationError("convergence_tolerance must be non-negative")
        if self.evaluation_interval < 1:
            raise ConfigurationError("evaluation_interval must be at least 1")
        if self.committee_jobs < 1:
            raise ConfigurationError("committee_jobs must be at least 1")

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips through :meth:`from_dict`).

        The engine-option fields are emitted only when non-default: their
        canonical JSON (and therefore every ``TrialSpec.trial_hash``) is
        unchanged for configs that predate them, keeping old run stores
        resumable.
        """
        data = {
            "seed_size": self.seed_size,
            "batch_size": self.batch_size,
            "max_iterations": self.max_iterations,
            "target_f1": self.target_f1,
            "convergence_window": self.convergence_window,
            "convergence_tolerance": self.convergence_tolerance,
            "random_state": self.random_state,
        }
        if self.warm_start:
            data["warm_start"] = self.warm_start
        if self.evaluation_interval != 1:
            data["evaluation_interval"] = self.evaluation_interval
        if self.committee_jobs != 1:
            data["committee_jobs"] = self.committee_jobs
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ActiveLearningConfig":
        return cls(**data)


@dataclass(frozen=True)
class PipelineConfig:
    """Everything that determines how a :class:`~repro.pipeline.MatchingPipeline`
    is trained and how it scores record pairs at inference time.

    Serializable (``to_dict`` / ``from_dict`` round-trip through the artifact
    manifest) and frozen, so a persisted pipeline can state exactly how it was
    produced.

    Attributes
    ----------
    combination:
        Named learner/selector combination trained by active learning
        (``"Trees(20)"``, ``"Linear-Margin(Ensemble)"``, ...), resolved by
        :func:`repro.harness.builders.build_combination`.
    config:
        Active-learning loop hyper-parameters used during :meth:`fit`.
    blocking:
        Blocking strategy applied both at training and at inference time.
        ``None`` resolves to the paper's Jaccard blocker at the training
        dataset's spec threshold; the *resolved* config is persisted so a
        reloaded pipeline blocks identically.
    scale / dataset_seed:
        Synthetic-generation parameters when :meth:`fit` is given a catalog
        dataset name (ignored for a ready-made :class:`EMDataset`).
    noise / oracle_seed:
        Training Oracle label-flip probability and its RNG seed.
    chunk_size:
        Default number of candidate pairs scored per chunk during
        :meth:`match` (bounds peak memory; chunking never changes scores).
    cascade:
        Score-cascade behavior of the inference hot path (staged feature
        extraction + provable bound pruning); see :class:`CascadeConfig`.
    """

    combination: str = "Trees(20)"
    config: ActiveLearningConfig = field(default_factory=ActiveLearningConfig)
    blocking: BlockingConfig | None = None
    scale: float = 1.0
    dataset_seed: int | None = None
    noise: float = 0.0
    oracle_seed: int | None = 0
    chunk_size: int = 4096
    cascade: CascadeConfig = field(default_factory=CascadeConfig)

    def __post_init__(self) -> None:
        if not self.combination:
            raise ConfigurationError("pipeline combination must be a non-empty name")
        if self.scale <= 0:
            raise ConfigurationError("pipeline scale must be positive")
        if not 0.0 <= self.noise < 1.0:
            raise ConfigurationError("pipeline noise must be in [0, 1)")
        if self.chunk_size < 1:
            raise ConfigurationError("pipeline chunk_size must be at least 1")

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips through :meth:`from_dict`).

        ``cascade`` is emitted only when non-default, so the canonical JSON
        (and every derived config/artifact hash) is unchanged for configs
        that predate the cascade.
        """
        data = {
            "combination": self.combination,
            "config": self.config.to_dict(),
            "blocking": self.blocking.to_dict() if self.blocking is not None else None,
            "scale": self.scale,
            "dataset_seed": self.dataset_seed,
            "noise": self.noise,
            "oracle_seed": self.oracle_seed,
            "chunk_size": self.chunk_size,
        }
        if self.cascade != CascadeConfig():
            data["cascade"] = self.cascade.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineConfig":
        data = dict(data)
        data["config"] = ActiveLearningConfig.from_dict(data.get("config", {}))
        if data.get("blocking") is not None:
            data["blocking"] = BlockingConfig.from_dict(data["blocking"])
        if data.get("cascade") is not None:
            data["cascade"] = CascadeConfig.from_dict(data["cascade"])
        else:
            data.pop("cascade", None)
        return cls(**data)
