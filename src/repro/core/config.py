"""Configuration of an active-learning run."""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class ActiveLearningConfig:
    """Hyper-parameters of the active-learning loop (Section 6 defaults).

    Attributes
    ----------
    seed_size:
        Number of initially labeled examples (30 in the paper).
    batch_size:
        Examples selected and labeled per iteration (10 in the paper).
    max_iterations:
        Upper bound on labeling iterations; ``None`` runs until another
        termination criterion fires.
    target_f1:
        Stop as soon as the evaluation F1 reaches this value (the paper stops
        when an approach achieves a near-perfect progressive F1).  ``None``
        disables the criterion (used for noisy-Oracle experiments, which run
        until the unlabeled pool is exhausted).
    convergence_window / convergence_tolerance:
        A run is also considered converged when the F1 changed by less than
        ``convergence_tolerance`` over the last ``convergence_window``
        iterations; set the window to 0 to disable.
    random_state:
        Seed for the loop's own randomness (seed sampling, tie-breaking).
    """

    seed_size: int = 30
    batch_size: int = 10
    max_iterations: int | None = 100
    target_f1: float | None = 0.98
    convergence_window: int = 0
    convergence_tolerance: float = 0.002
    random_state: int | None = 0

    def __post_init__(self) -> None:
        if self.seed_size < 2:
            raise ConfigurationError("seed_size must be at least 2")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be positive or None")
        if self.target_f1 is not None and not 0.0 < self.target_f1 <= 1.0:
            raise ConfigurationError("target_f1 must be in (0, 1] or None")
        if self.convergence_window < 0:
            raise ConfigurationError("convergence_window must be non-negative")
        if self.convergence_tolerance < 0:
            raise ConfigurationError("convergence_tolerance must be non-negative")
