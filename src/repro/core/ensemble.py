"""Active ensembles of high-precision linear classifiers (Section 5.2).

Instead of refining a single classifier, the active ensemble accumulates
classifiers over the course of active learning: whenever the current candidate
classifier's precision (measured on the Oracle-labeled examples it predicts as
matches) reaches the acceptance threshold τ, it is frozen into the ensemble
and the examples it covers (predicted matches) are removed from both the
labeled and the unlabeled pools, so the next candidate is learned on the
remaining, uncovered examples.  The ensemble's prediction is the union of the
positive predictions of all accepted classifiers (plus the current candidate).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..utils import Stopwatch, ensure_rng
from .base import ExampleSelector, Learner, check_compatibility
from .config import ActiveLearningConfig
from .evaluation import evaluate_predictions
from .oracle import Oracle
from .pools import LabeledPool, PairPool
from .results import ActiveLearningRun, IterationRecord


class ActiveEnsemble:
    """A disjunction of accepted classifiers: a pair is a match if any member says so."""

    def __init__(self) -> None:
        self.members: list[Learner] = []

    def __len__(self) -> int:
        return len(self.members)

    def accept(self, learner: Learner) -> None:
        self.members.append(learner)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Union of the members' positive predictions (all zeros when empty)."""
        if not self.members:
            return np.zeros(len(features), dtype=np.int64)
        votes = np.zeros(len(features), dtype=bool)
        for member in self.members:
            votes |= member.predict(features).astype(bool)
        return votes.astype(np.int64)

    def predict_with_candidate(self, features: np.ndarray, candidate: Learner | None) -> np.ndarray:
        """Ensemble prediction including the not-yet-accepted candidate model."""
        predictions = self.predict(features).astype(bool)
        if candidate is not None and candidate.is_fitted:
            predictions |= candidate.predict(features).astype(bool)
        return predictions.astype(np.int64)


class ActiveEnsembleLoop:
    """Active learning of an ensemble of high-precision classifiers.

    Parameters
    ----------
    learner_factory:
        Callable returning a fresh candidate learner (e.g. ``lambda:
        LinearSVM()``); a new candidate is created whenever the previous one
        is accepted into the ensemble.
    selector:
        Example selector applied to the candidate learner on the *uncovered*
        unlabeled examples (margin-based in the paper).
    precision_threshold:
        τ — the candidate is accepted when its precision on the labeled
        examples it predicts as matches reaches this value (0.85 in the paper).
    min_predicted_matches:
        The candidate must predict at least this many labeled matches before
        its precision is trusted.
    """

    def __init__(
        self,
        learner_factory,
        selector: ExampleSelector,
        pool: PairPool,
        oracle: Oracle,
        config: ActiveLearningConfig | None = None,
        precision_threshold: float = 0.85,
        min_predicted_matches: int = 3,
        evaluation_features: np.ndarray | None = None,
        evaluation_labels: np.ndarray | None = None,
        dataset_name: str = "unknown",
    ):
        if not 0.0 < precision_threshold <= 1.0:
            raise ConfigurationError("precision_threshold must be in (0, 1]")
        if min_predicted_matches < 1:
            raise ConfigurationError("min_predicted_matches must be positive")
        self.learner_factory = learner_factory
        probe = learner_factory()
        check_compatibility(probe, selector)
        self.selector = selector
        self.pool = pool
        self.oracle = oracle
        self.config = config or ActiveLearningConfig()
        self.precision_threshold = precision_threshold
        self.min_predicted_matches = min_predicted_matches
        if (evaluation_features is None) != (evaluation_labels is None):
            raise ConfigurationError(
                "evaluation_features and evaluation_labels must be provided together"
            )
        self.evaluation_features = evaluation_features
        self.evaluation_labels = evaluation_labels
        self.dataset_name = dataset_name
        self.ensemble = ActiveEnsemble()
        #: The candidate classifier at termination (``None`` until :meth:`run`
        #: finishes, or when it never got enough two-class labels to fit).
        #: Together with :attr:`ensemble` it is the final model: evaluation
        #: uses ``ensemble.predict_with_candidate(..., final_candidate)``.
        self.final_candidate: Learner | None = None

    def run(self) -> ActiveLearningRun:
        config = self.config
        rng = ensure_rng(config.random_state)
        labeled = LabeledPool(self.pool)
        labeled.seed(config.seed_size, self.oracle, rng=rng)

        # Pool indices whose predicted-match status is already covered by an
        # accepted ensemble member; they are excluded from further learning.
        covered = np.zeros(len(self.pool), dtype=bool)

        run = ActiveLearningRun(
            learner_name=f"{self.learner_factory().name}(ensemble)",
            selector_name=self.selector.name,
            dataset_name=self.dataset_name,
            metadata={
                "pool_size": len(self.pool),
                "precision_threshold": self.precision_threshold,
            },
        )

        candidate = self.learner_factory()
        iteration = 0
        terminated_because = "max_iterations"
        while True:
            iteration += 1

            labeled_indices = labeled.labeled_indices
            active_mask = ~covered[labeled_indices]
            active_labeled = labeled_indices[active_mask]
            train_features = self.pool.features[active_labeled]
            train_labels = labeled.labeled_labels()[active_mask]

            train_watch = Stopwatch()
            trained = False
            if len(train_labels) >= 2 and train_labels.min() != train_labels.max():
                with train_watch.timing():
                    candidate.fit(train_features, train_labels)
                trained = True

            evaluation = self._evaluate(candidate if trained else None)

            accepted = self._maybe_accept(
                candidate if trained else None, train_features, train_labels, covered
            )

            unlabeled_indices = labeled.unlabeled_indices
            uncovered_unlabeled = unlabeled_indices[~covered[unlabeled_indices]]
            selection = None
            if (
                trained
                and len(uncovered_unlabeled) > 0
                and not self._quality_reached(evaluation.f1)
            ):
                selection = self.selector.select(
                    learner=candidate,
                    labeled_features=train_features,
                    labeled_labels=train_labels,
                    unlabeled_features=self.pool.features[uncovered_unlabeled],
                    batch_size=min(config.batch_size, len(uncovered_unlabeled)),
                    rng=rng,
                )

            record = IterationRecord(
                iteration=iteration,
                n_labels=len(labeled),
                evaluation=evaluation,
                train_time=train_watch.elapsed,
                committee_creation_time=selection.committee_creation_time if selection else 0.0,
                scoring_time=selection.scoring_time if selection else 0.0,
                scored_examples=selection.scored_examples if selection else 0,
                selected=len(selection.indices) if selection else 0,
                extras={"accepted_classifiers": len(self.ensemble)},
            )
            run.append(record)

            if self._quality_reached(evaluation.f1):
                terminated_because = "target_f1"
                break
            if len(uncovered_unlabeled) == 0:
                terminated_because = "unlabeled_exhausted"
                break
            if selection is None or not selection.indices:
                terminated_because = "selector_exhausted"
                break
            if config.max_iterations is not None and iteration >= config.max_iterations:
                terminated_because = "max_iterations"
                break

            chosen_pool_indices = [int(uncovered_unlabeled[i]) for i in selection.indices]
            labels = self.oracle.label_batch(chosen_pool_indices)
            labeled.add_batch(chosen_pool_indices, labels)

            if accepted:
                # The accepted classifier is frozen in the ensemble; the next
                # iteration starts a fresh candidate on the uncovered examples.
                candidate = self.learner_factory()

        run.terminated_because = terminated_because
        run.metadata["accepted_classifiers"] = len(self.ensemble)
        self.final_candidate = candidate if candidate.is_fitted else None
        return run

    # -------------------------------------------------------------- internals
    def _maybe_accept(
        self,
        candidate: Learner | None,
        train_features: np.ndarray,
        train_labels: np.ndarray,
        covered: np.ndarray,
    ) -> bool:
        """Accept the candidate into the ensemble when it is precise enough."""
        if candidate is None or not candidate.is_fitted or len(train_labels) == 0:
            return False
        predicted = candidate.predict(train_features)
        predicted_matches = int(predicted.sum())
        if predicted_matches < self.min_predicted_matches:
            return False
        true_positives = int(((predicted == 1) & (train_labels == 1)).sum())
        precision = true_positives / predicted_matches
        if precision < self.precision_threshold:
            return False
        self.ensemble.accept(candidate)
        # Remove the accepted classifier's coverage (its predicted matches)
        # from the whole pool so subsequent candidates focus on what is left.
        pool_predictions = candidate.predict(self.pool.features)
        covered |= pool_predictions.astype(bool)
        return True

    def _evaluate(self, candidate: Learner | None):
        if self.evaluation_features is not None:
            features = self.evaluation_features
            truth = self.evaluation_labels
        else:
            features = self.pool.features
            truth = self.pool.true_labels
        predictions = self.ensemble.predict_with_candidate(features, candidate)
        return evaluate_predictions(truth, predictions)

    def _quality_reached(self, f1: float) -> bool:
        return self.config.target_f1 is not None and f1 >= self.config.target_f1
