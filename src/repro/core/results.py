"""Per-iteration records and whole-run results of active learning."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from .evaluation import EvaluationResult


def _jsonable(value):
    """Coerce numpy scalars/arrays (and containers of them) to plain Python."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {key: _jsonable(v) for key, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True)
class IterationRecord:
    """Everything measured in one active-learning iteration.

    ``n_labels`` is the cumulative number of Oracle labels consumed when the
    model of this iteration was trained (the x-axis of the paper's figures);
    the time fields implement the latency metric of Section 3.
    """

    iteration: int
    n_labels: int
    evaluation: EvaluationResult
    train_time: float
    committee_creation_time: float
    scoring_time: float
    scored_examples: int
    selected: int
    extras: dict = field(default_factory=dict)

    @property
    def selection_time(self) -> float:
        return self.committee_creation_time + self.scoring_time

    @property
    def user_wait_time(self) -> float:
        """Train time + example-selection time (the Fig. 13 metric)."""
        return self.train_time + self.selection_time

    @property
    def f1(self) -> float:
        return self.evaluation.f1

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "iteration": int(self.iteration),
            "n_labels": int(self.n_labels),
            "evaluation": self.evaluation.to_dict(),
            "train_time": float(self.train_time),
            "committee_creation_time": float(self.committee_creation_time),
            "scoring_time": float(self.scoring_time),
            "scored_examples": int(self.scored_examples),
            "selected": int(self.selected),
            "extras": _jsonable(self.extras),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IterationRecord":
        data = dict(data)
        data["evaluation"] = EvaluationResult.from_dict(data["evaluation"])
        return cls(**data)


@dataclass
class ActiveLearningRun:
    """The full trajectory of one (learner, selector, dataset) run."""

    learner_name: str
    selector_name: str
    dataset_name: str
    records: list[IterationRecord] = field(default_factory=list)
    terminated_because: str = "unknown"
    metadata: dict = field(default_factory=dict)

    def append(self, record: IterationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # --------------------------------------------------------------- curves
    def labels_curve(self) -> np.ndarray:
        return np.array([record.n_labels for record in self.records])

    def f1_curve(self) -> np.ndarray:
        return np.array([record.f1 for record in self.records])

    def selection_time_curve(self) -> np.ndarray:
        return np.array([record.selection_time for record in self.records])

    def user_wait_time_curve(self) -> np.ndarray:
        return np.array([record.user_wait_time for record in self.records])

    # -------------------------------------------------------------- summaries
    @property
    def final_f1(self) -> float:
        self._require_records()
        return self.records[-1].f1

    @property
    def best_f1(self) -> float:
        self._require_records()
        return float(max(record.f1 for record in self.records))

    @property
    def total_labels(self) -> int:
        self._require_records()
        return self.records[-1].n_labels

    @property
    def total_user_wait_time(self) -> float:
        return float(sum(record.user_wait_time for record in self.records))

    @property
    def average_user_wait_time(self) -> float:
        self._require_records()
        return self.total_user_wait_time / len(self.records)

    def labels_to_convergence(self, tolerance: float = 0.01) -> int:
        """Minimum #labels after which the F1 stays within ``tolerance`` of its best.

        This is the "#labels" metric of Section 3: the number of labeled
        examples needed to reach the approach's convergent quality.
        """
        self._require_records()
        best = self.best_f1
        for record in self.records:
            if record.f1 >= best - tolerance:
                return record.n_labels
        return self.records[-1].n_labels

    def f1_at_labels(self, n_labels: int) -> float:
        """F1 of the most recent iteration with at most ``n_labels`` labels."""
        self._require_records()
        eligible = [record.f1 for record in self.records if record.n_labels <= n_labels]
        return eligible[-1] if eligible else 0.0

    def _require_records(self) -> None:
        if not self.records:
            raise ConfigurationError("run has no iteration records")

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-serializable form of the whole trajectory.

        Round-trips through :meth:`from_dict`: curves, metadata and summary of
        the reconstructed run are identical to the original's.
        """
        return {
            "learner_name": self.learner_name,
            "selector_name": self.selector_name,
            "dataset_name": self.dataset_name,
            "terminated_because": self.terminated_because,
            "metadata": _jsonable(self.metadata),
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ActiveLearningRun":
        return cls(
            learner_name=data["learner_name"],
            selector_name=data["selector_name"],
            dataset_name=data["dataset_name"],
            terminated_because=data.get("terminated_because", "unknown"),
            metadata=dict(data.get("metadata", {})),
            records=[IterationRecord.from_dict(record) for record in data.get("records", [])],
        )

    def summary(self) -> dict:
        """A flat dictionary used by the benchmark reporting code."""
        self._require_records()
        return {
            "learner": self.learner_name,
            "selector": self.selector_name,
            "dataset": self.dataset_name,
            "iterations": len(self.records),
            "labels": self.total_labels,
            "best_f1": round(self.best_f1, 4),
            "final_f1": round(self.final_f1, 4),
            "labels_to_convergence": self.labels_to_convergence(),
            "total_user_wait_time": round(self.total_user_wait_time, 4),
            "terminated_because": self.terminated_because,
        }
