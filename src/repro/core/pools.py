"""Pools of candidate pairs: the full post-blocking pool and the labeled subset."""

from __future__ import annotations

import numpy as np

from ..datasets.base import CandidatePair
from ..exceptions import ConfigurationError
from ..utils import ensure_rng


class PairPool:
    """All post-blocking candidate pairs with their features and ground truth.

    The ground-truth labels are *hidden* from learners and selectors — only
    the Oracle reads them.  The pool is immutable; the labeled/unlabeled split
    is tracked by :class:`LabeledPool`.
    """

    def __init__(
        self,
        features: np.ndarray,
        true_labels: np.ndarray,
        pairs: list[CandidatePair] | None = None,
    ):
        features = np.asarray(features, dtype=float)
        true_labels = np.asarray(true_labels, dtype=int)
        if features.ndim != 2:
            raise ConfigurationError("features must be a 2-D matrix")
        if len(features) != len(true_labels):
            raise ConfigurationError("features and true_labels must be aligned")
        if pairs is not None and len(pairs) != len(features):
            raise ConfigurationError("pairs must be aligned with features")
        self.features = features
        self.true_labels = true_labels
        self.pairs = pairs

    def __len__(self) -> int:
        return len(self.true_labels)

    @property
    def dim(self) -> int:
        return self.features.shape[1]

    @property
    def class_skew(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.true_labels.mean())


class LabeledPool:
    """Tracks which pool examples have been labeled and with which Oracle labels.

    Oracle labels may differ from the pool's hidden ground truth when a noisy
    Oracle is used; learners always train on the Oracle labels.

    State is a boolean labeled-mask plus a preallocated label array, so an
    ``add_batch`` costs O(batch) instead of O(pool).  The derived views
    (``labeled_indices``, ``labeled_features()``, ``labeled_labels()``,
    ``unlabeled_indices``) are computed once per write generation by
    :meth:`_refresh_cache` and served from cache afterwards; the cached arrays
    are marked read-only because every caller shares them.  Labeled and
    unlabeled index views are always in ascending pool order.
    """

    def __init__(self, pool: PairPool):
        self.pool = pool
        self._mask = np.zeros(len(pool), dtype=bool)
        self._labels = np.zeros(len(pool), dtype=np.int64)
        self._n_labeled = 0
        self._stale = True
        self._labeled_indices: np.ndarray | None = None
        self._labeled_features: np.ndarray | None = None
        self._labeled_labels: np.ndarray | None = None
        self._unlabeled_indices: np.ndarray | None = None

    def __len__(self) -> int:
        return self._n_labeled

    def _refresh_cache(self) -> None:
        """Rebuild all derived views after a write (one gather per generation)."""
        labeled = np.flatnonzero(self._mask)
        features = self.pool.features[labeled]
        labels = self._labels[labeled]
        unlabeled = np.flatnonzero(~self._mask)
        for array in (labeled, features, labels, unlabeled):
            array.flags.writeable = False
        self._labeled_indices = labeled
        self._labeled_features = features
        self._labeled_labels = labels
        self._unlabeled_indices = unlabeled
        self._stale = False

    def add(self, index: int, oracle_label: int) -> None:
        index = int(index)
        if index < 0 or index >= len(self.pool):
            raise ConfigurationError(f"index {index} outside the pool")
        if self._mask[index]:
            raise ConfigurationError(f"example {index} was already labeled")
        self._mask[index] = True
        self._labels[index] = int(oracle_label)
        self._n_labeled += 1
        self._stale = True

    def add_batch(self, indices: list[int], oracle_labels: list[int]) -> None:
        if len(indices) != len(oracle_labels):
            raise ConfigurationError("indices and labels must be aligned")
        if len(indices) == 0:
            return
        batch = np.asarray(indices, dtype=np.int64)
        labels = np.asarray(oracle_labels, dtype=np.int64)
        if batch.min() < 0 or batch.max() >= len(self.pool):
            raise ConfigurationError("batch contains indices outside the pool")
        unique, counts = np.unique(batch, return_counts=True)
        if self._mask[batch].any() or len(unique) != len(batch):
            already = batch[self._mask[batch]]
            duplicate = int(already[0]) if len(already) else int(unique[counts > 1][0])
            raise ConfigurationError(f"example {duplicate} was already labeled")
        self._mask[batch] = True
        self._labels[batch] = labels
        self._n_labeled += len(batch)
        self._stale = True

    def is_labeled(self, index: int) -> bool:
        return bool(self._mask[int(index)])

    @property
    def labeled_indices(self) -> np.ndarray:
        if self._stale:
            self._refresh_cache()
        return self._labeled_indices

    @property
    def unlabeled_indices(self) -> np.ndarray:
        if self._stale:
            self._refresh_cache()
        return self._unlabeled_indices

    def labeled_features(self) -> np.ndarray:
        if self._stale:
            self._refresh_cache()
        return self._labeled_features

    def labeled_labels(self) -> np.ndarray:
        if self._stale:
            self._refresh_cache()
        return self._labeled_labels

    def unlabeled_features(self) -> np.ndarray:
        return self.pool.features[self.unlabeled_indices]

    def seed(
        self,
        size: int,
        oracle,
        rng: np.random.Generator | int | None = None,
        stratified: bool = True,
    ) -> None:
        """Label an initial random sample of the pool (the 30-example seed).

        Guarantees of the ``stratified=True`` path, whenever the pool contains
        both classes and ``size >= 2``:

        * exactly ``min(size, len(pool))`` examples are labeled — when one
          class is too small to supply its share, the shortfall is topped up
          from the other class instead of silently under-filling the seed;
        * the sample contains at least ``min(2, size // 2)`` examples of each
          class, capped by the class's population (so even a ``size`` of 2 or
          3 sees both classes whenever both exist) — without this, a heavily
          skewed EM dataset frequently yields an all-negative seed from which
          no classifier can be learned.
        """
        if len(self) > 0:
            raise ConfigurationError("seed() must be called on an empty labeled pool")
        size = min(size, len(self.pool))
        rng = ensure_rng(rng)

        indices: list[int]
        if stratified:
            positives = np.flatnonzero(self.pool.true_labels == 1)
            negatives = np.flatnonzero(self.pool.true_labels == 0)
            chosen: list[int] = []
            if len(positives) and len(negatives) and size >= 2:
                minimum_per_class = min(2, size // 2)
                n_pos = min(len(positives), max(minimum_per_class, int(round(size * self.pool.class_skew))))
                n_pos = min(n_pos, size - minimum_per_class)
                n_neg = min(size - n_pos, len(negatives))
                # n_neg was clamped by a scarce negative class: give the
                # shortfall back to the positives (size <= len(pool), so the
                # two classes together can always fill the seed).
                n_pos = min(n_pos + (size - n_pos - n_neg), len(positives))
                chosen.extend(int(i) for i in rng.choice(positives, size=n_pos, replace=False))
                chosen.extend(int(i) for i in rng.choice(negatives, size=n_neg, replace=False))
            else:
                chosen.extend(int(i) for i in rng.choice(len(self.pool), size=size, replace=False))
            indices = chosen
        else:
            indices = [int(i) for i in rng.choice(len(self.pool), size=size, replace=False)]

        for index in indices:
            self.add(index, oracle.label(index))
