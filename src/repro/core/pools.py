"""Pools of candidate pairs: the full post-blocking pool and the labeled subset."""

from __future__ import annotations

import numpy as np

from ..datasets.base import CandidatePair
from ..exceptions import ConfigurationError
from ..utils import ensure_rng


class PairPool:
    """All post-blocking candidate pairs with their features and ground truth.

    The ground-truth labels are *hidden* from learners and selectors — only
    the Oracle reads them.  The pool is immutable; the labeled/unlabeled split
    is tracked by :class:`LabeledPool`.
    """

    def __init__(
        self,
        features: np.ndarray,
        true_labels: np.ndarray,
        pairs: list[CandidatePair] | None = None,
    ):
        features = np.asarray(features, dtype=float)
        true_labels = np.asarray(true_labels, dtype=int)
        if features.ndim != 2:
            raise ConfigurationError("features must be a 2-D matrix")
        if len(features) != len(true_labels):
            raise ConfigurationError("features and true_labels must be aligned")
        if pairs is not None and len(pairs) != len(features):
            raise ConfigurationError("pairs must be aligned with features")
        self.features = features
        self.true_labels = true_labels
        self.pairs = pairs

    def __len__(self) -> int:
        return len(self.true_labels)

    @property
    def dim(self) -> int:
        return self.features.shape[1]

    @property
    def class_skew(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.true_labels.mean())


class LabeledPool:
    """Tracks which pool examples have been labeled and with which Oracle labels.

    Oracle labels may differ from the pool's hidden ground truth when a noisy
    Oracle is used; learners always train on the Oracle labels.
    """

    def __init__(self, pool: PairPool):
        self.pool = pool
        self._oracle_labels: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._oracle_labels)

    def add(self, index: int, oracle_label: int) -> None:
        index = int(index)
        if index < 0 or index >= len(self.pool):
            raise ConfigurationError(f"index {index} outside the pool")
        if index in self._oracle_labels:
            raise ConfigurationError(f"example {index} was already labeled")
        self._oracle_labels[index] = int(oracle_label)

    def add_batch(self, indices: list[int], oracle_labels: list[int]) -> None:
        if len(indices) != len(oracle_labels):
            raise ConfigurationError("indices and labels must be aligned")
        for index, label in zip(indices, oracle_labels):
            self.add(index, label)

    def is_labeled(self, index: int) -> bool:
        return int(index) in self._oracle_labels

    @property
    def labeled_indices(self) -> np.ndarray:
        return np.array(sorted(self._oracle_labels), dtype=np.int64)

    @property
    def unlabeled_indices(self) -> np.ndarray:
        labeled = self._oracle_labels
        return np.array([i for i in range(len(self.pool)) if i not in labeled], dtype=np.int64)

    def labeled_features(self) -> np.ndarray:
        return self.pool.features[self.labeled_indices]

    def labeled_labels(self) -> np.ndarray:
        return np.array([self._oracle_labels[i] for i in self.labeled_indices], dtype=np.int64)

    def unlabeled_features(self) -> np.ndarray:
        return self.pool.features[self.unlabeled_indices]

    def seed(
        self,
        size: int,
        oracle,
        rng: np.random.Generator | int | None = None,
        stratified: bool = True,
    ) -> None:
        """Label an initial random sample of the pool (the 30-example seed).

        With ``stratified=True`` the sample is guaranteed to contain at least
        two examples of each class whenever the pool does — without this, a
        heavily skewed EM dataset frequently yields an all-negative seed from
        which no classifier can be learned.
        """
        if len(self) > 0:
            raise ConfigurationError("seed() must be called on an empty labeled pool")
        size = min(size, len(self.pool))
        rng = ensure_rng(rng)

        indices: list[int]
        if stratified:
            positives = np.flatnonzero(self.pool.true_labels == 1)
            negatives = np.flatnonzero(self.pool.true_labels == 0)
            minimum_per_class = 2
            chosen: list[int] = []
            if len(positives) and len(negatives) and size >= 2 * minimum_per_class:
                n_pos = min(len(positives), max(minimum_per_class, int(round(size * self.pool.class_skew))))
                n_pos = min(n_pos, size - minimum_per_class)
                n_neg = size - n_pos
                n_neg = min(n_neg, len(negatives))
                chosen.extend(int(i) for i in rng.choice(positives, size=n_pos, replace=False))
                chosen.extend(int(i) for i in rng.choice(negatives, size=n_neg, replace=False))
            else:
                chosen.extend(int(i) for i in rng.choice(len(self.pool), size=size, replace=False))
            indices = chosen
        else:
            indices = [int(i) for i in rng.choice(len(self.pool), size=size, replace=False)]

        for index in indices:
            self.add(index, oracle.label(index))
