"""Crowd-noise mitigation: majority voting over repeated Oracle queries.

Section 6.2 of the paper notes that its noisy-Oracle protocol is harsher than
real crowdsourcing deployments, which "regulate the noisy labels using
techniques such as majority voting and label inference".  This module provides
that missing piece as an extension so the effect of error correction can be
benchmarked: a :class:`MajorityVoteOracle` asks ``votes`` independent noisy
workers for every pair and returns the majority answer, at ``votes`` times the
labeling cost.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..utils import ensure_rng
from .oracle import Oracle
from .pools import PairPool


class MajorityVoteOracle(Oracle):
    """Aggregates several independent noisy answers per example by majority vote.

    Parameters
    ----------
    pool:
        The candidate-pair pool holding the hidden ground truth.
    noise_probability:
        Per-worker label-flip probability (same semantics as
        :class:`~repro.core.oracle.NoisyOracle`).
    votes:
        Number of independent workers asked per example; must be odd so the
        vote cannot tie.  The query counter increases by ``votes`` per
        example, reflecting the real crowd cost.
    """

    def __init__(
        self,
        pool: PairPool,
        noise_probability: float,
        votes: int = 3,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        if not 0.0 <= noise_probability <= 1.0:
            raise ConfigurationError("noise_probability must be in [0, 1]")
        if votes < 1 or votes % 2 == 0:
            raise ConfigurationError("votes must be a positive odd number")
        self.pool = pool
        self.noise_probability = noise_probability
        self.votes = votes
        self._rng = ensure_rng(rng)
        self._memo: dict[int, int] = {}

    def _label(self, index: int) -> int:
        index = int(index)
        if index < 0 or index >= len(self.pool):
            raise ConfigurationError(f"no ground truth for example {index}")
        if index in self._memo:
            return self._memo[index]
        truth = int(self.pool.true_labels[index])
        flips = self._rng.random(self.votes) < self.noise_probability
        answers = np.where(flips, 1 - truth, truth)
        majority = int(np.round(answers.mean()))
        # Each worker's answer counts towards the labeling budget; label()
        # already added one query, so add the remaining votes - 1.
        self.queries += self.votes - 1
        self._memo[index] = majority
        return majority

    def effective_noise(self) -> float:
        """Probability that the majority answer is still wrong.

        For per-worker noise ``p`` and ``k`` voters this is the tail of a
        Binomial(k, p) at ⌈k/2⌉ — the quantity that explains why majority
        voting makes active learning robust to moderate crowd noise.
        """
        from math import comb

        k, p = self.votes, self.noise_probability
        threshold = k // 2 + 1
        return float(sum(comb(k, i) * p**i * (1 - p) ** (k - i) for i in range(threshold, k + 1)))
