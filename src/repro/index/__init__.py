"""Incremental match-index subsystem: low-latency queries + entity resolution.

The batch :class:`~repro.pipeline.MatchingPipeline` re-blocks two full tables
on every :meth:`~repro.pipeline.MatchingPipeline.match` call.  This package
adds the serving-shaped complement — answering *one new record against a
large indexed corpus* without re-blocking it ("answering queries under
updates", Berkholz et al., arXiv:1702.08764):

* :class:`MatchIndex` — a persistable, incrementally updatable MinHash-LSH
  index over a fitted pipeline: ``add`` / ``remove`` maintain posting lists
  plus cached signatures, ``query`` scores only colliding candidates, and
  results are **bit-identical** to an equivalent batch ``match()`` (the
  incremental path is kept honest against the batch path by golden and
  property tests, in the spirit of Wang et al., arXiv:1710.07660).
* An entity-resolution layer — :meth:`MatchIndex.resolve` runs union-find
  (:class:`UnionFind`) over accepted match pairs and emits stable entity
  clusters, maintained incrementally as records are added.

State is columnar (:mod:`repro.index.storage`) and the band index is
hash-partitioned into shards (:mod:`repro.index.shards`); persistence reuses
the versioned pipeline-artifact machinery with one content-addressed ``.npy``
payload per column / posting shard, memory-mapped on load.  See
``docs/index.md`` for the artifact layout, memory model and maintenance
semantics (tombstones, compaction, incremental resolve).
"""

from .match_index import (
    INDEX_FORMAT_VERSION,
    INDEX_SIG16_PAYLOAD,
    INDEX_STATE_PAYLOAD,
    INDEX_SUPPORTED_VERSIONS,
    MatchIndex,
    shard_payload_names,
)
from .resolution import UnionFind, stable_clusters
from .shards import ShardedPostings, ShardPostings, shard_of
from .storage import IndexStorage

__all__ = [
    "INDEX_FORMAT_VERSION",
    "INDEX_SIG16_PAYLOAD",
    "INDEX_STATE_PAYLOAD",
    "INDEX_SUPPORTED_VERSIONS",
    "IndexStorage",
    "MatchIndex",
    "ShardPostings",
    "ShardedPostings",
    "UnionFind",
    "shard_of",
    "shard_payload_names",
    "stable_clusters",
]
