"""Incrementally maintained match index over a trained pipeline.

A :class:`MatchIndex` answers the serving-side question the batch
:meth:`~repro.pipeline.MatchingPipeline.match` cannot: *given one new record,
which of the N indexed records match it* — without re-blocking the whole
corpus per call.  It maintains, under :meth:`add` / :meth:`remove`:

* a MinHash-LSH band index (band-hash → posting lists of row ids) built with
  the same :class:`~repro.blocking.signatures.SignatureComputer` the batch
  blocker uses,
* cached per-record shingle hash arrays and MinHash signatures (so an added
  record is hashed exactly once, ever), and
* a persistent feature extractor whose normalization / value-pair caches warm
  up as the corpus is indexed.

:meth:`query` therefore touches only the posting lists the probe record's
band keys collide with and scores one small candidate batch — **bit-identical**
to a batch ``match([record], corpus)`` under the equivalent ``minhash_lsh``
blocking config (golden + property tested), at a small fraction of the cost.

Deletes are *tombstones*: the row is masked out of every query and
:meth:`compact` (triggered automatically past
``IndexConfig.compaction_threshold``) rebuilds the arrays and posting lists
without the dead rows.  Row order is insertion order and compaction preserves
it, which is what keeps incremental results aligned with the batch reference.

On top of the pairwise layer, :meth:`resolve` runs union-find over accepted
match pairs (prediction = match, optionally ``score >= min_score``) and emits
stable entity clusters; cluster state is maintained incrementally on
:meth:`add` and recomputed after :meth:`remove` (union-find cannot split).
"""

from __future__ import annotations

import pickle

import numpy as np

from ..blocking.signatures import SignatureComputer
from ..core.config import CascadeConfig, IndexConfig
from ..datasets.base import CandidatePair, Record, Table
from ..exceptions import ArtifactError, ConfigurationError, DatasetError
from ..harness.preparation import make_extractor
from ..pipeline.artifact import read_manifest, read_payload, write_artifact
from ..pipeline.matching import MatchingPipeline, MatchScore, coerce_record
from ..scoring import CascadeScorer
from .resolution import UnionFind, stable_clusters

__all__ = [
    "INDEX_FORMAT_VERSION",
    "INDEX_STATE_PAYLOAD",
    "INDEX_SUPPORTED_VERSIONS",
    "MatchIndex",
]

#: Current index payload version; bump on any reader-incompatible change to
#: the pickled state layout.  Gated independently of the enclosing pipeline
#: artifact's ``format_version`` — a version-1 pipeline reader can always
#: load the wrapped pipeline and ignore the index payload.
INDEX_FORMAT_VERSION = 1

#: Index payload versions this reader can load.
INDEX_SUPPORTED_VERSIONS = frozenset({1})

#: Artifact-relative file holding the pickled index state.
INDEX_STATE_PAYLOAD = "index/state.pkl"

#: Ceiling on the persistent extractor's value-pair cache.  Probe-side
#: entries can never hit again (the cache key includes the probe's value),
#: so a long-lived serving index would otherwise grow without bound; when
#: the ceiling is crossed the caches are dropped and rebuilt lazily.
#: Caches never affect scores, only speed.
EXTRACTOR_CACHE_LIMIT = 1 << 20


class MatchIndex:
    """Low-latency single-record matching against an indexed corpus.

    Parameters
    ----------
    pipeline:
        A fitted (or loaded) :class:`~repro.pipeline.MatchingPipeline`; its
        predictor and feature extraction are reused unchanged, so index
        scores are exactly the pipeline's scores.
    config:
        LSH / maintenance parameters.  ``None`` inherits the pipeline's
        resolved blocking when it is ``minhash_lsh`` (so indexed queries
        block exactly as the pipeline's own ``match`` would), else the
        :class:`~repro.core.config.IndexConfig` defaults.

    The equivalence contract — for any add/remove history, ``query(r)``
    returns exactly what ``match([r], live_corpus)`` returns under
    ``config.blocking_config()`` — is asserted by the golden and hypothesis
    suites in ``tests/test_index.py`` / ``tests/test_index_golden.py``.
    """

    def __init__(self, pipeline: MatchingPipeline, config: IndexConfig | None = None):
        pipeline._require_fitted()
        if config is None:
            resolved = pipeline.resolved_blocking
            if resolved is not None and resolved.method == "minhash_lsh":
                config = IndexConfig.from_blocking(resolved)
            else:
                config = IndexConfig()
        self.pipeline = pipeline
        self.config = config
        self._computer = SignatureComputer(
            num_perm=config.num_perm,
            bands=config.bands,
            shingle_size=config.shingle_size,
            seed=config.seed,
        )
        #: Persistent extractor: normalization and value-pair caches warm up
        #: as records are indexed/queried instead of being rebuilt per call.
        self._extractor = make_extractor(pipeline.matched_columns, pipeline.feature_kind)
        #: Shared cascade scorer: one set of prune counters for the index's
        #: lifetime, surfaced through :meth:`stats` (and from there the
        #: serving daemon's ``/stats``).
        self._cascade = CascadeScorer(
            pipeline._predictor, self._extractor, pipeline.config.cascade
        )
        self._records: list[Record] = []
        self._shingles: list[np.ndarray | None] = []
        # Row-aligned storage lives in geometrically grown buffers (see
        # _ensure_capacity); the _signatures/_sig16/_band_keys/_live
        # properties expose the filled prefix as writable views, so a
        # trickle of single-record add() calls is O(batch) amortized rather
        # than re-concatenating (copying) the whole corpus every time.
        self._sig_buf = np.empty((0, config.num_perm), dtype=np.uint64)
        self._sig16_buf = np.empty((0, config.num_perm), dtype=np.uint16)
        self._keys_buf = np.empty((0, config.bands), dtype=np.uint64)
        self._live_buf = np.empty(0, dtype=bool)
        self._row_of: dict[str, int] = {}
        self._postings: list[dict[int, list[int]]] = [dict() for _ in range(config.bands)]
        self._n_tombstones = 0
        self._added_total = 0
        self._shingle_sets: dict[int, set[int]] = {}
        self._resolution: dict | None = None

    # ------------------------------------------------------------- storage
    @property
    def _signatures(self) -> np.ndarray:
        return self._sig_buf[: len(self._records)]

    @property
    def _sig16(self) -> np.ndarray:
        return self._sig16_buf[: len(self._records)]

    @property
    def _band_keys(self) -> np.ndarray:
        return self._keys_buf[: len(self._records)]

    @property
    def _live(self) -> np.ndarray:
        return self._live_buf[: len(self._records)]

    def _ensure_capacity(self, extra: int) -> None:
        """Grow the row buffers geometrically to hold ``extra`` more rows."""
        size = len(self._records)
        needed = size + extra
        if needed <= len(self._live_buf):
            return
        capacity = max(needed, 2 * len(self._live_buf), 64)

        def grown(buffer: np.ndarray) -> np.ndarray:
            replacement = np.empty((capacity,) + buffer.shape[1:], dtype=buffer.dtype)
            replacement[:size] = buffer[:size]
            return replacement

        self._sig_buf = grown(self._sig_buf)
        self._sig16_buf = grown(self._sig16_buf)
        self._keys_buf = grown(self._keys_buf)
        self._live_buf = grown(self._live_buf)

    def _set_storage(
        self,
        signatures: np.ndarray,
        sig16: np.ndarray,
        band_keys: np.ndarray,
        live: np.ndarray,
    ) -> None:
        """Install exact-size row storage (compaction / state reload)."""
        self._sig_buf = signatures
        self._sig16_buf = sig16
        self._keys_buf = band_keys
        self._live_buf = live

    # -------------------------------------------------------------- corpus
    def __len__(self) -> int:
        """Number of live (queryable) records."""
        return len(self._row_of)

    def __contains__(self, record_id: str) -> bool:
        return str(record_id) in self._row_of

    @property
    def n_rows(self) -> int:
        """Physical rows, live plus tombstoned (shrinks on compaction)."""
        return len(self._records)

    @property
    def n_tombstones(self) -> int:
        return self._n_tombstones

    def records(self) -> list[Record]:
        """Live records in insertion order — the batch-equivalent corpus."""
        return [self._records[row] for row in np.flatnonzero(self._live)]

    def record_ids(self) -> list[str]:
        return [record.record_id for record in self.records()]

    def stats(self) -> dict:
        """Deterministic (timestamp-free) corpus and structure counters."""
        posting_lists = sum(len(band) for band in self._postings)
        return {
            "records": len(self),
            "rows": self.n_rows,
            "tombstones": self._n_tombstones,
            "bands": self.config.bands,
            "num_perm": self.config.num_perm,
            "posting_lists": posting_lists,
            "cascade": self._cascade.stats(),
        }

    def set_cascade_mode(self, mode: str) -> None:
        """Override the pipeline's cascade mode for this index (CLI hook).

        Rebuilds the scorer under the new :class:`CascadeConfig`; accumulated
        prune counters carry over so ``stats()`` stays monotone.
        """
        previous = self._cascade
        self._cascade = CascadeScorer(
            self.pipeline._predictor, self._extractor, CascadeConfig(mode=mode)
        )
        counts = previous.stats()
        self._cascade.merge_counts(
            counts["candidates_seen"],
            counts["pruned_at_bound"],
            counts["fully_scored"],
        )

    # ----------------------------------------------------------------- add
    def _coerce_batch(self, records) -> list[Record]:
        if isinstance(records, Table):
            records = records.records
        return [
            coerce_record(obj, self._added_total + offset)
            for offset, obj in enumerate(records)
        ]

    def add(self, records) -> list[str]:
        """Index a batch of records; returns their ids in insertion order.

        Each record is shingled, signed and banded exactly once; signatures
        for the whole batch are computed with the same vectorized kernel the
        batch blocker uses.  Records whose normalized text is empty are kept
        (they belong to the corpus and to entity resolution as singletons)
        but never enter a posting list — they cannot collide with anything,
        matching batch blocking semantics.

        Raises :class:`~repro.exceptions.DatasetError` when an id is already
        live in the index or duplicated within the batch.
        """
        batch = self._coerce_batch(records)
        seen: set[str] = set()
        duplicates = []
        for record in batch:
            if record.record_id in self._row_of or record.record_id in seen:
                duplicates.append(record.record_id)
            seen.add(record.record_id)
        if duplicates:
            raise DatasetError(f"record id(s) already indexed: {sorted(set(duplicates))}")
        if not batch:
            return []

        hashes = [self._computer.shingle_hashes(record) for record in batch]
        nonempty = [h for h in hashes if h is not None]
        signatures = self._computer.signature_matrix(nonempty)

        base = len(self._records)
        full = np.zeros((len(batch), self.config.num_perm), dtype=np.uint64)
        keys = np.zeros((len(batch), self.config.bands), dtype=np.uint64)
        nonempty_offsets = np.fromiter(
            (i for i, h in enumerate(hashes) if h is not None), dtype=np.intp
        )
        if len(nonempty_offsets):
            full[nonempty_offsets] = signatures
            keys[nonempty_offsets] = self._computer.band_hashes(signatures)

        self._ensure_capacity(len(batch))
        self._sig_buf[base : base + len(batch)] = full
        self._sig16_buf[base : base + len(batch)] = full.astype(np.uint16)
        self._keys_buf[base : base + len(batch)] = keys
        self._live_buf[base : base + len(batch)] = True
        self._records.extend(batch)
        self._shingles.extend(hashes)
        for offset, record in enumerate(batch):
            self._row_of[record.record_id] = base + offset
        self._added_total += len(batch)

        if len(nonempty_offsets):
            rows = (base + nonempty_offsets).astype(np.int64)
            self._append_postings(rows, keys[nonempty_offsets])
        self._warm_normalization(batch)

        if self._resolution is not None:
            self._extend_resolution((base + np.arange(len(batch))).tolist())
        return [record.record_id for record in batch]

    def _append_postings(self, rows: np.ndarray, keys: np.ndarray) -> None:
        """Append rows to each band's posting lists, grouped per bucket key.

        Rows within a bucket stay in ascending (insertion) order — candidate
        generation sorts anyway, but deterministic posting order keeps
        persisted state a pure function of the add/remove sequence.
        """
        for band in range(self.config.bands):
            band_keys = keys[:, band]
            order = np.argsort(band_keys, kind="stable")
            sorted_keys = band_keys[order]
            sorted_rows = rows[order]
            boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(sorted_keys)]))
            postings = self._postings[band]
            for start, end in zip(starts.tolist(), ends.tolist()):
                key = int(sorted_keys[start])
                bucket = postings.get(key)
                if bucket is None:
                    postings[key] = sorted_rows[start:end].tolist()
                else:
                    bucket.extend(sorted_rows[start:end].tolist())

    def _warm_normalization(self, batch: list[Record]) -> None:
        """Pre-normalize indexed attribute values into the extractor cache.

        Queries then only pay normalization for the probe record's values;
        the corpus side is already cached.  The Boolean extractor keeps no
        normalization cache, so this is a no-op for rule pipelines.
        """
        normalize_cached = getattr(self._extractor, "_normalize_cached", None)
        if normalize_cached is None:
            return
        for record in batch:
            for column in self._extractor.matched_columns:
                normalize_cached(record.value(column))

    # -------------------------------------------------------------- remove
    def remove(self, record_ids) -> int:
        """Tombstone records by id; returns the number removed.

        Unknown (or already removed) ids raise
        :class:`~repro.exceptions.DatasetError` before any state changes.
        Tombstoned rows stay in the arrays and posting lists — masked out of
        every query — until compaction; removal invalidates incremental
        resolution state (union-find cannot split), so the next
        :meth:`resolve` recomputes from the live corpus.
        """
        if isinstance(record_ids, str):
            record_ids = [record_ids]
        # Order-preserving dedup: mentioning an id twice in one call is one
        # removal, keeping the loop below exception-safe after the precheck.
        ids = list(dict.fromkeys(str(record_id) for record_id in record_ids))
        missing = sorted({record_id for record_id in ids if record_id not in self._row_of})
        if missing:
            raise DatasetError(f"record id(s) not in index: {missing}")
        for record_id in ids:
            row = self._row_of.pop(record_id)
            self._live[row] = False
            self._n_tombstones += 1
        self._resolution = None
        if (
            self.n_rows
            and self.config.compaction_threshold < 1.0
            and self._n_tombstones / self.n_rows > self.config.compaction_threshold
        ):
            self.compact()
        return len(ids)

    def compact(self) -> int:
        """Physically drop tombstoned rows; returns the number reclaimed.

        Survivor order (and therefore query output order) is unchanged:
        compaction renumbers rows but preserves insertion order, so the index
        stays aligned with its batch-equivalent corpus.
        """
        reclaimed = self._n_tombstones
        if reclaimed == 0:
            return 0
        keep = np.flatnonzero(self._live)
        self._set_storage(
            self._signatures[keep],
            self._sig16[keep],
            self._band_keys[keep],
            np.ones(len(keep), dtype=bool),
        )
        self._records = [self._records[row] for row in keep]
        self._shingles = [self._shingles[row] for row in keep]
        self._row_of = {record.record_id: row for row, record in enumerate(self._records)}
        self._n_tombstones = 0
        self._shingle_sets.clear()
        self._rebuild_postings()
        return int(reclaimed)

    def _rebuild_postings(self) -> None:
        self._postings = [dict() for _ in range(self.config.bands)]
        rows = np.fromiter(
            (row for row, hashes in enumerate(self._shingles) if hashes is not None),
            dtype=np.int64,
        )
        if len(rows):
            self._append_postings(rows, self._band_keys[rows])

    # --------------------------------------------------------------- query
    def _collision_rows(self, keys: np.ndarray) -> np.ndarray:
        """Live rows colliding with the given band keys, ascending and unique."""
        hits = []
        for band in range(self.config.bands):
            bucket = self._postings[band].get(int(keys[band]))
            if bucket:
                hits.append(np.asarray(bucket, dtype=np.int64))
        if not hits:
            return np.empty(0, dtype=np.int64)
        rows = np.unique(np.concatenate(hits))
        return rows[self._live[rows]]

    def _shingle_set(self, row: int) -> set[int]:
        cached = self._shingle_sets.get(row)
        if cached is None:
            cached = self._shingle_sets[row] = set(self._shingles[row].tolist())
        return cached

    def _verify_rows(
        self, signature: np.ndarray, hashes: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Apply the configured verification pass to candidate rows.

        Identical decisions to the batch blocker: signature-agreement
        estimate with a 2σ recall slack, optionally re-scored by exact
        shingle-set Jaccard (both sides' shingles are cached).
        """
        verify = self.config.verify_threshold
        if verify is None or not len(rows):
            return rows
        estimates = SignatureComputer.estimate_agreement(
            signature.astype(np.uint16),
            self._sig16,
            np.zeros(len(rows), dtype=np.intp),
            rows,
        )
        rows = rows[SignatureComputer.verification_mask(estimates, verify, self.config.num_perm)]
        if not self.config.exact_verify or not len(rows):
            return rows
        query_set = set(hashes.tolist())
        survivors = [
            row
            for row in rows.tolist()
            if SignatureComputer.exact_jaccard(query_set, self._shingle_set(row)) >= verify
        ]
        return np.asarray(survivors, dtype=np.int64)

    def _trim_extractor_cache(self) -> None:
        """Bound the persistent extractor's memoization against probe churn."""
        value_cache = getattr(self._extractor, "_value_cache", None)
        if value_cache is not None and len(value_cache) > EXTRACTOR_CACHE_LIMIT:
            self._extractor.clear_cache()

    def _score_rows(
        self, record: Record, rows: np.ndarray, min_score: float | None = None
    ) -> list[MatchScore]:
        """Score ``record`` against corpus rows with the pipeline's predictor.

        Chunked like :meth:`MatchingPipeline.match` (chunking never changes
        scores); one shared scoring cascade keeps the two paths bit-identical.
        With ``min_score`` the cascade may drop candidates whose score is
        provably below the floor without fully scoring them — exactly the
        rows :meth:`_filter_scores` would discard anyway.
        """
        chunk_size = self.pipeline.config.chunk_size
        row_list = rows.tolist()
        results: list[MatchScore] = []
        for start in range(0, len(row_list), chunk_size):
            chunk_rows = row_list[start : start + chunk_size]
            pairs = [CandidatePair(record, self._records[row]) for row in chunk_rows]
            kept, scores, predictions = self._cascade.score_chunk(
                pairs, floors=min_score
            )
            for offset, score, prediction in zip(kept.tolist(), scores, predictions):
                results.append(
                    MatchScore(
                        left_id=record.record_id,
                        right_id=self._records[chunk_rows[offset]].record_id,
                        score=float(score),
                        is_match=bool(prediction),
                    )
                )
        return results

    @staticmethod
    def _filter_scores(
        results: list[MatchScore], top_k: int | None, min_score: float | None
    ) -> list[MatchScore]:
        """Apply the ``min_score`` / ``top_k`` post-filter of :meth:`query`.

        One shared filter for the single and batched query paths, so the two
        can never disagree on ordering or truncation semantics.
        """
        if min_score is not None:
            results = [result for result in results if result.score >= min_score]
        if top_k is not None:
            # Always sorted, not just when truncating: the ordering contract
            # must not flip based on how many candidates survived.
            results = sorted(results, key=lambda result: -result.score)[:top_k]
        return results

    def query(
        self,
        record,
        top_k: int | None = None,
        min_score: float | None = None,
    ) -> list[MatchScore]:
        """Match one record against the indexed corpus.

        Returns scored pairs bit-identical to a batch
        ``pipeline.match([record], corpus)`` under the index's blocking
        config — same candidate set, same score floats, same order — filtered
        to ``score >= min_score`` when given.  With ``top_k`` set, results
        are instead returned highest-score first (ties broken by corpus
        order), truncated to ``top_k``.

        A record with no usable text (all attributes missing/empty) collides
        with nothing and returns ``[]``.
        """
        if top_k is not None and top_k < 1:
            raise ConfigurationError("top_k must be at least 1 or None")
        probe = coerce_record(record)
        hashes = self._computer.shingle_hashes(probe)
        if hashes is None or not self._row_of:
            return []
        signature = self._computer.signature_matrix([hashes])
        keys = self._computer.band_hashes(signature)[0]
        rows = self._collision_rows(keys)
        rows = self._verify_rows(signature, hashes, rows)
        if not len(rows):
            return []
        results = self._score_rows(probe, rows, min_score)
        self._trim_extractor_cache()
        return self._filter_scores(results, top_k, min_score)

    @staticmethod
    def _broadcast_option(name: str, value, count: int) -> list:
        """Expand a scalar-or-sequence query option to one value per probe."""
        if isinstance(value, (list, tuple)):
            if len(value) != count:
                raise ConfigurationError(
                    f"{name} sequence has {len(value)} entries for {count} records"
                )
            return list(value)
        return [value] * count

    def query_batch(
        self,
        records,
        top_k=None,
        min_score=None,
    ) -> list[list[MatchScore]]:
        """Match several records in one coalesced pass over the index.

        Semantically ``[query(r, top_k, min_score) for r in records]`` —
        bit-identical results, probe order preserved — but the work is
        batched: probe signatures are computed with one vectorized MinHash
        kernel and all surviving (probe, candidate) pairs are concatenated
        into shared scoring chunks, so N concurrent probes cost one
        vectorized scoring call instead of N (the serving daemon's request
        coalescing builds on exactly this method).  Chunk composition never
        changes scores — the same guarantee batch ``match`` makes for its
        ``chunk_size`` — which is what keeps the batched path bit-identical
        to the one-at-a-time path.

        ``top_k`` and ``min_score`` accept a scalar (applied to every probe)
        or a sequence aligned with ``records`` (per-probe settings, as when
        coalescing independent callers).
        """
        probes = [coerce_record(obj) for obj in records]
        top_ks = self._broadcast_option("top_k", top_k, len(probes))
        min_scores = self._broadcast_option("min_score", min_score, len(probes))
        for k in top_ks:
            if k is not None and k < 1:
                raise ConfigurationError("top_k must be at least 1 or None")
        results: list[list[MatchScore]] = [[] for _ in probes]
        if not probes:
            return results

        hashes_list = [self._computer.shingle_hashes(probe) for probe in probes]
        pairs: list[CandidatePair] = []
        owners: list[int] = []
        if self._row_of:
            usable = [i for i, hashes in enumerate(hashes_list) if hashes is not None]
            if usable:
                signatures = self._computer.signature_matrix(
                    [hashes_list[i] for i in usable]
                )
                keys = self._computer.band_hashes(signatures)
                for offset, i in enumerate(usable):
                    rows = self._collision_rows(keys[offset])
                    rows = self._verify_rows(
                        signatures[offset : offset + 1], hashes_list[i], rows
                    )
                    for row in rows.tolist():
                        pairs.append(CandidatePair(probes[i], self._records[row]))
                        owners.append(i)

        chunk_size = self.pipeline.config.chunk_size
        for start in range(0, len(pairs), chunk_size):
            chunk = pairs[start : start + chunk_size]
            # Per-pair floors: each pair inherits its owning probe's
            # min_score, so coalesced chunks prune exactly as the equivalent
            # one-at-a-time queries would.
            floors = [min_scores[owners[start + offset]] for offset in range(len(chunk))]
            kept, scores, predictions = self._cascade.score_chunk(chunk, floors=floors)
            for offset, score, prediction in zip(kept.tolist(), scores, predictions):
                pair = chunk[offset]
                results[owners[start + offset]].append(
                    MatchScore(
                        left_id=pair.left.record_id,
                        right_id=pair.right.record_id,
                        score=float(score),
                        is_match=bool(prediction),
                    )
                )
        if pairs:
            self._trim_extractor_cache()
        return [
            self._filter_scores(result, k, floor)
            for result, k, floor in zip(results, top_ks, min_scores)
        ]

    # ------------------------------------------------------------- resolve
    def _candidate_rows_below(self, row: int) -> np.ndarray:
        """Verified live candidate rows ``c < row`` colliding with ``row``.

        The self-join building block of :meth:`resolve`: restricting to
        earlier rows counts each unordered pair exactly once, and makes the
        incremental path (new rows against everything before them) provably
        equal to a full recompute.
        """
        hashes = self._shingles[row]
        if hashes is None:
            return np.empty(0, dtype=np.int64)
        rows = self._collision_rows(self._band_keys[row])
        rows = rows[rows < row]
        return self._verify_rows(self._signatures[row : row + 1], hashes, rows)

    def _union_accepted(
        self, uf: UnionFind, pairs: list[tuple[int, int]], min_score: float | None
    ) -> None:
        """Score row pairs in chunks and union the accepted ones.

        A pair is accepted when the predictor calls it a match and (when
        ``min_score`` is set) its score reaches the floor — the same
        acceptance rule however the pairs were discovered, which is what
        makes incremental and full resolution agree.
        """
        chunk_size = self.pipeline.config.chunk_size
        for start in range(0, len(pairs), chunk_size):
            chunk = pairs[start : start + chunk_size]
            candidates = [
                CandidatePair(self._records[first], self._records[second])
                for first, second in chunk
            ]
            # accept_only: resolution only ever unions accepted pairs, so
            # candidates provably below the acceptance threshold (or the
            # score floor) can be pruned without changing the clustering.
            kept, scores, predictions = self._cascade.score_chunk(
                candidates, floors=min_score, accept_only=True
            )
            for offset, score, prediction in zip(kept.tolist(), scores, predictions):
                if prediction and (min_score is None or float(score) >= min_score):
                    first, second = chunk[offset]
                    uf.union(
                        self._records[first].record_id, self._records[second].record_id
                    )
        self._trim_extractor_cache()

    def _extend_resolution(self, new_rows: list[int]) -> None:
        """Incrementally fold newly added rows into the resolution state."""
        state = self._resolution
        pairs = []
        for row in new_rows:
            state["uf"].add(self._records[row].record_id)
            for other in self._candidate_rows_below(row).tolist():
                pairs.append((other, row))
        self._union_accepted(state["uf"], pairs, state["min_score"])

    def resolve(self, min_score: float | None = None) -> list[list[str]]:
        """Cluster the live corpus into entities; returns stable clusters.

        Runs union-find over all accepted match pairs among live records
        (candidates from the band index, verified and scored exactly like
        :meth:`query`).  Output is a partition of the live record ids:
        lexicographically sorted clusters, ordered by first member,
        singletons included — identical whether the state was built
        incrementally by :meth:`add` or recomputed from scratch.

        ``min_score`` defaults to ``config.resolve_min_score``.  The computed
        state is cached and maintained incrementally across :meth:`add`;
        :meth:`remove` invalidates it (a recompute happens on the next call)
        and calling with a different ``min_score`` recomputes too.
        """
        if min_score is None:
            min_score = self.config.resolve_min_score
        state = self._resolution
        if state is None or state["min_score"] != min_score:
            uf = UnionFind(self.record_ids())
            pairs = []
            for row in np.flatnonzero(self._live).tolist():
                for other in self._candidate_rows_below(row).tolist():
                    pairs.append((other, row))
            self._union_accepted(uf, pairs, min_score)
            self._resolution = state = {"min_score": min_score, "uf": uf}
        return stable_clusters(state["uf"], self.record_ids())

    # --------------------------------------------------------- persistence
    def save(self, path) -> dict:
        """Persist pipeline and index as one artifact; returns the manifest.

        The directory is a superset of a pipeline artifact — a plain
        :meth:`MatchingPipeline.load` on it ignores the index payload — with
        the pickled index state in a content-addressed ``index/state-*.pkl``
        file (resolved and hash-verified via the manifest's ``payloads``
        section, so in-place updates are crash-safe) and an ``index`` manifest
        section carrying its own format version and config.  State excludes
        everything derivable (posting lists, band keys, resolution cache), so
        saving the same add/remove history twice is byte-identical.
        """
        body = self.pipeline._manifest_body()
        body["index"] = {
            "format_version": INDEX_FORMAT_VERSION,
            "config": self.config.to_dict(),
            "stats": {
                "records": len(self),
                "rows": self.n_rows,
                "tombstones": self._n_tombstones,
            },
        }
        state = {
            "records": [
                (record.record_id, dict(record.attributes)) for record in self._records
            ],
            "live": np.asarray(self._live, dtype=bool),
            "signatures": self._signatures,
            "shingles": self._shingles,
            "n_tombstones": self._n_tombstones,
            "added_total": self._added_total,
        }
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        return write_artifact(
            path,
            body,
            self.pipeline._inference_state(),
            payloads={INDEX_STATE_PAYLOAD: payload},
        )

    @classmethod
    def load(cls, path) -> "MatchIndex":
        """Reload a persisted index (pipeline included) from an artifact.

        Raises :class:`~repro.exceptions.ArtifactError` when the artifact
        carries no index payload, the payload version is unsupported, or any
        file fails its manifest hash check.  Derived structures (16-bit
        signatures, band keys, posting lists) are rebuilt deterministically
        from the persisted state, so a reloaded index answers queries
        bit-identically to the one that was saved.
        """
        manifest = read_manifest(path)
        section = manifest.get("index")
        if section is None:
            raise ArtifactError(
                f"artifact {str(path)!r} holds no match index "
                f"(a plain pipeline artifact? use MatchingPipeline.load)"
            )
        version = section.get("format_version")
        if version not in INDEX_SUPPORTED_VERSIONS:
            raise ArtifactError(
                f"index payload version {version!r} is not supported "
                f"(supported: {sorted(INDEX_SUPPORTED_VERSIONS)}); "
                f"rebuild the index or upgrade repro"
            )
        pipeline = MatchingPipeline.load(path)
        index = cls(pipeline, IndexConfig.from_dict(section.get("config", {})))
        state = pickle.loads(read_payload(path, INDEX_STATE_PAYLOAD))
        index._install_state(state)
        return index

    def _install_state(self, state: dict) -> None:
        self._records = [
            Record(record_id=record_id, attributes=attributes)
            for record_id, attributes in state["records"]
        ]
        # Copy arrays instead of adopting the unpickled ones: rebuilt arrays
        # carry the canonical native dtype objects, so a reloaded index
        # re-saves byte-identically (pickle memo-shares the dtype exactly as
        # it does for a freshly built index).
        self._shingles = [
            None if hashes is None else np.array(hashes, dtype=np.uint64)
            for hashes in state["shingles"]
        ]
        signatures = np.array(state["signatures"], dtype=np.uint64)
        band_keys = np.zeros((len(self._records), self.config.bands), dtype=np.uint64)
        rows = np.fromiter(
            (row for row, hashes in enumerate(self._shingles) if hashes is not None),
            dtype=np.int64,
        )
        if len(rows):
            band_keys[rows] = self._computer.band_hashes(signatures[rows])
        self._set_storage(
            signatures,
            signatures.astype(np.uint16),
            band_keys,
            np.array(state["live"], dtype=bool),
        )
        self._n_tombstones = int(state["n_tombstones"])
        self._added_total = int(state["added_total"])
        self._row_of = {
            record.record_id: row
            for row, record in enumerate(self._records)
            if self._live[row]
        }
        self._rebuild_postings()
