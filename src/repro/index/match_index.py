"""Incrementally maintained match index over a trained pipeline.

A :class:`MatchIndex` answers the serving-side question the batch
:meth:`~repro.pipeline.MatchingPipeline.match` cannot: *given one new record,
which of the N indexed records match it* — without re-blocking the whole
corpus per call.  It maintains, under :meth:`add` / :meth:`remove`:

* a MinHash-LSH band index (band-hash → posting rows) partitioned into
  ``IndexConfig.shards`` hash-partitioned shards
  (:mod:`repro.index.shards`), built with the same
  :class:`~repro.blocking.signatures.SignatureComputer` the batch blocker
  uses,
* columnar per-record state (:mod:`repro.index.storage`): 16-bit signature
  matrix, band keys, shingle-hash arena, and the records themselves as
  UTF-8/JSON arenas — numpy columns, not per-record Python objects, and
* a persistent feature extractor whose normalization / value-pair caches warm
  up as the corpus is indexed.

:meth:`query` unions the posting hits across shards (partition-invariant, so
results are bit-identical for every shard count) and scores one small
candidate batch — **bit-identical** to a batch ``match([record], corpus)``
under the equivalent ``minhash_lsh`` blocking config (golden + property
tested), at a small fraction of the cost.

Deletes are *tombstones*: the row is masked out of every query and
:meth:`compact` (triggered automatically past
``IndexConfig.compaction_threshold``) rebuilds columns and postings without
the dead rows, reclaiming all over-allocated tail capacity.  Row order is
insertion order and compaction preserves it, which is what keeps incremental
results aligned with the batch reference.

Persistence is columnar too: :meth:`save` writes each column and each
posting shard as its own content-addressed ``.npy`` payload, so an in-place
re-save only writes the files whose bytes actually changed (a remove touches
one file, an add leaves clean shards alone), and :meth:`load` memory-maps
the payloads read-only — O(1) startup with demand paging instead of
unpickling the corpus.  Streaming bulk builds (:meth:`build_stream`) append
record batches to the columns without ever materializing the full corpus.

In-place updates are first-class: :meth:`upsert` atomically replaces (or
inserts) records — validation is all-or-nothing, the old row is tombstoned
and the new one appended in one logical step, and an in-place save stays
dirty-only (live mask plus touched shards).

On top of the pairwise layer, :meth:`resolve` runs union-find over accepted
match pairs (prediction = match, optionally ``score >= min_score``) and emits
stable entity clusters.  Cluster state is maintained incrementally across
every mutation: :meth:`add` extends it with the new rows, and
:meth:`remove` / :meth:`upsert` run a *scoped repair* — union-find cannot
split, but the state keeps a log of every accepted pair, and dropping a row
only removes pairs incident to it, so replaying the surviving log rebuilds
the clustering without re-scoring a single candidate (provably equal to a
from-scratch :meth:`resolve`; property-tested).
"""

from __future__ import annotations

import io
import pickle
from pathlib import Path

import numpy as np

from ..blocking.signatures import SignatureComputer
from ..core.config import CascadeConfig, IndexConfig
from ..datasets.base import CandidatePair, Record, Table
from ..exceptions import ArtifactError, ConfigurationError, DatasetError
from ..harness.preparation import make_extractor
from ..pipeline.artifact import (
    PayloadRef,
    read_manifest,
    read_payload,
    read_payload_path,
    write_artifact,
)
from ..pipeline.matching import MatchingPipeline, MatchScore, coerce_record
from ..scoring import CascadeScorer
from ..telemetry import MetricsRegistry, span
from .resolution import UnionFind, stable_clusters
from .shards import ShardFanout, ShardPostings, ShardedPostings, shard_of
from .storage import (
    Arena,
    GrowableMatrix,
    GrowableVector,
    IndexStorage,
    encode_attributes,
)

__all__ = [
    "INDEX_FORMAT_VERSION",
    "INDEX_SIG16_PAYLOAD",
    "INDEX_STATE_PAYLOAD",
    "INDEX_SUPPORTED_VERSIONS",
    "MatchIndex",
    "shard_payload_names",
]

#: Current index payload version; bump on any reader-incompatible change to
#: the persisted layout.  Gated independently of the enclosing pipeline
#: artifact's ``format_version`` — a version-1 pipeline reader can always
#: load the wrapped pipeline and ignore the index payloads.
INDEX_FORMAT_VERSION = 2

#: Index payload versions this reader can load.  Version 1 (one pickled
#: state blob) loads through a legacy path and upgrades to the columnar
#: layout on the next save.
INDEX_SUPPORTED_VERSIONS = frozenset({1, 2})

#: Artifact-relative file holding the *legacy* (version-1) pickled state.
INDEX_STATE_PAYLOAD = "index/state.pkl"

#: Version-2 columnar payloads: one ``.npy`` file per column, so an in-place
#: save rewrites only the columns that changed.
INDEX_SIG16_PAYLOAD = "index/sig16.npy"
INDEX_BAND_KEYS_PAYLOAD = "index/band_keys.npy"
INDEX_LIVE_PAYLOAD = "index/live.npy"
INDEX_SHARD_IDS_PAYLOAD = "index/shard_ids.npy"
INDEX_SHINGLES_PAYLOAD = "index/shingles.npy"
INDEX_SHINGLE_OFFSETS_PAYLOAD = "index/shingle_offsets.npy"
INDEX_IDS_PAYLOAD = "index/ids.npy"
INDEX_ID_OFFSETS_PAYLOAD = "index/id_offsets.npy"
INDEX_ATTRS_PAYLOAD = "index/attrs.npy"
INDEX_ATTR_OFFSETS_PAYLOAD = "index/attr_offsets.npy"

#: Every column payload an :meth:`MatchIndex.add` dirties (postings shards
#: are tracked separately, per touched shard).
_COLUMN_PAYLOAD_NAMES = (
    INDEX_SIG16_PAYLOAD,
    INDEX_BAND_KEYS_PAYLOAD,
    INDEX_LIVE_PAYLOAD,
    INDEX_SHARD_IDS_PAYLOAD,
    INDEX_SHINGLES_PAYLOAD,
    INDEX_SHINGLE_OFFSETS_PAYLOAD,
    INDEX_IDS_PAYLOAD,
    INDEX_ID_OFFSETS_PAYLOAD,
    INDEX_ATTRS_PAYLOAD,
    INDEX_ATTR_OFFSETS_PAYLOAD,
)


def shard_payload_names(shard: int) -> tuple[str, str, str]:
    """The three CSR payload names of one posting shard."""
    prefix = f"index/postings/{shard:04d}"
    return (f"{prefix}.keys.npy", f"{prefix}.rows.npy", f"{prefix}.offsets.npy")


def _npy_bytes(array: np.ndarray) -> bytes:
    """Canonical ``.npy`` encoding (contiguous, fixed header) of an array."""
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array))
    return buffer.getvalue()


#: Ceiling on the persistent extractor's value-pair cache.  Probe-side
#: entries can never hit again (the cache key includes the probe's value),
#: so a long-lived serving index would otherwise grow without bound; when
#: the ceiling is crossed the caches are dropped and rebuilt lazily.
#: Caches never affect scores, only speed.
EXTRACTOR_CACHE_LIMIT = 1 << 20

#: Ceiling on the row → :class:`Record` decode cache.  Records decoded from
#: the attribute arena (or kept from :meth:`add`) are memoized so scoring a
#: hot corpus row never re-parses JSON; past the ceiling the cache resets.
RECORD_CACHE_LIMIT = 1 << 16


class MatchIndex:
    """Low-latency single-record matching against an indexed corpus.

    Parameters
    ----------
    pipeline:
        A fitted (or loaded) :class:`~repro.pipeline.MatchingPipeline`; its
        predictor and feature extraction are reused unchanged, so index
        scores are exactly the pipeline's scores.
    config:
        LSH / maintenance parameters.  ``None`` inherits the pipeline's
        resolved blocking when it is ``minhash_lsh`` (so indexed queries
        block exactly as the pipeline's own ``match`` would), else the
        :class:`~repro.core.config.IndexConfig` defaults.
    registry:
        Optional :class:`~repro.telemetry.MetricsRegistry` receiving the
        index's metrics (mutation counters, corpus gauges, lookup timings,
        cascade counters).  Default is a fresh per-index registry — two
        indexes (and thus two in-process servers) never mix metrics — held
        as :attr:`metrics`; :meth:`stats` is a read-only view over it.

    The equivalence contract — for any add/remove history, ``query(r)``
    returns exactly what ``match([r], live_corpus)`` returns under
    ``config.blocking_config()`` — is asserted by the golden and hypothesis
    suites in ``tests/test_index.py`` / ``tests/test_index_golden.py``, and
    holds for every ``config.shards`` value
    (``tests/test_index_stream_shards.py``).
    """

    def __init__(
        self,
        pipeline: MatchingPipeline,
        config: IndexConfig | None = None,
        registry: MetricsRegistry | None = None,
    ):
        pipeline._require_fitted()
        if config is None:
            resolved = pipeline.resolved_blocking
            if resolved is not None and resolved.method == "minhash_lsh":
                config = IndexConfig.from_blocking(resolved)
            else:
                config = IndexConfig()
        self.pipeline = pipeline
        self.config = config
        #: The index's metric namespace.  The cascade scorer shares it (its
        #: ``repro_cascade_*`` counters accumulate for the index's lifetime)
        #: and the serving daemon adopts it wholesale, so ``GET /metrics``
        #: exports exactly what :meth:`stats` summarizes.
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._metric_upserts = self.metrics.counter(
            "repro_index_upserts_total", "Records upserted (updates + inserts)"
        )
        self._metric_added = self.metrics.counter(
            "repro_index_added_total", "Records appended (adds, upserts, bulk builds)"
        )
        self._metric_removed = self.metrics.counter(
            "repro_index_removed_total", "Records tombstoned by remove()"
        )
        self._metric_repairs = self.metrics.counter(
            "repro_index_resolution_repairs_total",
            "Scoped resolution repairs (pair-log replays)",
        )
        self._metric_recomputes = self.metrics.counter(
            "repro_index_resolution_recomputes_total",
            "Full resolution recomputes (first resolve / changed floor)",
        )
        self._metric_records = self.metrics.gauge(
            "repro_index_records", "Live (queryable) records"
        )
        self._metric_tombstones = self.metrics.gauge(
            "repro_index_tombstones", "Tombstoned rows awaiting compaction"
        )
        self._metric_lookup = self.metrics.histogram(
            "repro_index_lookup_seconds",
            "Posting lookup latency per probe (union across shards)",
        )
        self._computer = SignatureComputer(
            num_perm=config.num_perm,
            bands=config.bands,
            shingle_size=config.shingle_size,
            seed=config.seed,
        )
        #: Persistent extractor: normalization and value-pair caches warm up
        #: as records are indexed/queried instead of being rebuilt per call.
        self._extractor = make_extractor(pipeline.matched_columns, pipeline.feature_kind)
        #: Shared cascade scorer: one set of prune counters for the index's
        #: lifetime, surfaced through :meth:`stats` (and from there the
        #: serving daemon's ``/stats``).
        self._cascade = CascadeScorer(
            pipeline._predictor,
            self._extractor,
            pipeline.config.cascade,
            registry=self.metrics,
        )
        self._storage = IndexStorage(config.num_perm, config.bands)
        self._postings = ShardedPostings(config.bands, config.shards)
        self._postings.lookup_timer = self._metric_lookup
        #: record id → row for live rows; ``None`` means "not built yet" —
        #: a freshly loaded index defers the O(n) id decode until the first
        #: mutation or membership check, keeping :meth:`load` O(1).
        self._id_map: dict[str, int] | None = {}
        self._record_cache: dict[int, Record] = {}
        self._n_live = 0
        self._n_tombstones = 0
        #: Logical insertion count — *state*, not telemetry: it numbers
        #: auto-generated record ids and persists in the artifact manifest,
        #: so it stays an attribute (mirrored into ``repro_index_added_total``).
        self._added_total = 0
        self._shingle_sets: dict[int, set[int]] = {}
        #: Cached resolution state: ``{"min_score", "uf", "pairs"}`` where
        #: ``pairs`` logs every accepted (left id, right id) pair the
        #: union-find was built from — the structure scoped repair replays.
        self._resolution: dict | None = None
        #: payload name → ref into the artifact this state was loaded from /
        #: saved to; a clean payload's bytes are provably unchanged, so an
        #: in-place save skips re-serializing (and rewriting) it entirely.
        self._clean: dict[str, PayloadRef] = {}
        self._fanout: ShardFanout | None = None

    # ------------------------------------------------------------- storage
    @property
    def _live(self) -> np.ndarray:
        """Writable live mask over all physical rows."""
        return self._storage.live.array

    def _ensure_id_map(self) -> dict[str, int]:
        if self._id_map is None:
            self._id_map = {
                self._storage.record_id(row): row
                for row in np.flatnonzero(self._live).tolist()
            }
        return self._id_map

    def _record_at(self, row: int) -> Record:
        """The record at a physical row, decoded from the arenas (memoized).

        Eviction is FIFO (oldest insertion first, one entry per miss): a
        corpus slightly over ``RECORD_CACHE_LIMIT`` degrades gracefully
        instead of wiping every hot entry the moment the ceiling is hit.
        """
        cache = self._record_cache
        record = cache.get(row)
        if record is None:
            record_id, attributes = self._storage.record_parts(row)
            record = Record(record_id=record_id, attributes=attributes)
            while len(cache) >= RECORD_CACHE_LIMIT:
                cache.pop(next(iter(cache)))
            cache[row] = record
        return record

    def _mark_dirty(self, names, shards=()) -> None:
        """Drop clean-payload refs for mutated columns / posting shards."""
        for name in names:
            self._clean.pop(name, None)
        for shard in shards:
            for name in shard_payload_names(shard):
                self._clean.pop(name, None)
        self._drop_fanout()

    def _drop_fanout(self) -> None:
        if self._fanout is not None:
            self._fanout.close()
            self._fanout = None

    def _sync_gauges(self) -> None:
        """Refresh the corpus gauges after any live/tombstone change."""
        self._metric_records.set(self._n_live)
        self._metric_tombstones.set(self._n_tombstones)

    def close(self) -> None:
        """Release the query fan-out pool (no-op for in-process indexes)."""
        self._drop_fanout()

    # -------------------------------------------------------------- corpus
    def __len__(self) -> int:
        """Number of live (queryable) records."""
        return self._n_live

    def __contains__(self, record_id: str) -> bool:
        return str(record_id) in self._ensure_id_map()

    @property
    def n_rows(self) -> int:
        """Physical rows, live plus tombstoned (shrinks on compaction)."""
        return self._storage.n_rows

    @property
    def n_tombstones(self) -> int:
        return self._n_tombstones

    def records(self) -> list[Record]:
        """Live records in insertion order — the batch-equivalent corpus."""
        return [self._record_at(row) for row in np.flatnonzero(self._live).tolist()]

    def record_ids(self) -> list[str]:
        return [
            self._storage.record_id(row) for row in np.flatnonzero(self._live).tolist()
        ]

    def stats(self) -> dict:
        """Deterministic (timestamp-free) corpus and structure counters.

        Adds per-shard posting/tombstone counts and a resident/mapped byte
        split: ``resident_bytes`` estimates RAM actually owned by the index
        (columns, tails, posting deltas), ``mapped_bytes`` counts read-only
        memory-mapped artifact payloads served from the page cache.

        The mutation and resolution counters are a *view over the metrics
        registry* (:attr:`metrics`) — the same series a serving daemon
        exports on ``GET /metrics`` as ``repro_index_*`` — so this dict and
        a Prometheus scrape can never disagree.
        """
        live = self._live
        dead_shards = (
            self._storage.shard_ids.array[~live]
            if self._n_tombstones
            else np.empty(0, dtype=np.uint32)
        )
        dead_counts = np.bincount(dead_shards, minlength=self._postings.n_shards)
        shard_stats = []
        for shard_index, shard in enumerate(self._postings.shards):
            shard_stats.append(
                {
                    "shard": shard_index,
                    "entries": int(shard.n_entries),
                    "posting_lists": shard.posting_lists(),
                    "tombstones": int(dead_counts[shard_index]),
                }
            )
        return {
            "records": len(self),
            "rows": self.n_rows,
            "tombstones": self._n_tombstones,
            "upserts_total": self._metric_upserts.value,
            "resolution_repairs": self._metric_repairs.value,
            "resolution_recomputes": self._metric_recomputes.value,
            "bands": self.config.bands,
            "num_perm": self.config.num_perm,
            "posting_lists": sum(entry["posting_lists"] for entry in shard_stats),
            "shards": shard_stats,
            "resident_bytes": int(
                self._storage.resident_bytes + self._postings.resident_bytes
            ),
            "mapped_bytes": int(
                self._storage.mapped_bytes + self._postings.mapped_bytes
            ),
            "cascade": self._cascade.stats(),
        }

    def set_cascade_mode(self, mode: str) -> None:
        """Override the pipeline's cascade mode for this index (CLI hook).

        Rebuilds the scorer under the new :class:`CascadeConfig`.  The new
        scorer shares the index's registry, so the accumulated prune
        counters carry over automatically and ``stats()`` stays monotone.
        """
        self._cascade = CascadeScorer(
            self.pipeline._predictor,
            self._extractor,
            CascadeConfig(mode=mode),
            registry=self.metrics,
        )

    # ----------------------------------------------------------------- add
    def _coerce_batch(self, records) -> list[Record]:
        if isinstance(records, Table):
            records = records.records
        return [
            coerce_record(obj, self._added_total + offset)
            for offset, obj in enumerate(records)
        ]

    def add(self, records) -> list[str]:
        """Index a batch of records; returns their ids in insertion order.

        Each record is shingled, signed and banded exactly once; signatures
        for the whole batch are computed with the same vectorized kernel the
        batch blocker uses.  Records whose normalized text is empty are kept
        (they belong to the corpus and to entity resolution as singletons)
        but never enter a posting list — they cannot collide with anything,
        matching batch blocking semantics.

        Raises :class:`~repro.exceptions.DatasetError` when an id is already
        live in the index or duplicated within the batch.
        """
        return self._add_batch(self._coerce_batch(records), warm=True)

    def build_stream(self, batches, warm: bool = False) -> int:
        """Bulk-build from an iterable of record batches; returns rows added.

        The streaming complement of :meth:`add`: batches are signed with the
        vectorized kernel and appended to the columnar arenas one at a time,
        so the full corpus is never materialized in memory — peak RSS is the
        columns plus one batch.  Any partitioning of the same records into
        batches produces **byte-identical** artifacts and query results
        (equivalence-tested); cache warming is off by default since a bulk
        build usually saves the artifact rather than serving queries.
        """
        total = 0
        for batch in batches:
            total += len(self._add_batch(self._coerce_batch(batch), warm=warm))
        return total

    @staticmethod
    def _batch_duplicates(batch: list[Record]) -> list[str]:
        """Record ids mentioned more than once within one batch, sorted."""
        seen: set[str] = set()
        duplicates: set[str] = set()
        for record in batch:
            if record.record_id in seen:
                duplicates.add(record.record_id)
            seen.add(record.record_id)
        return sorted(duplicates)

    def _add_batch(self, batch: list[Record], warm: bool) -> list[str]:
        id_map = self._ensure_id_map()
        duplicates = set(self._batch_duplicates(batch))
        duplicates.update(r.record_id for r in batch if r.record_id in id_map)
        if duplicates:
            raise DatasetError(f"record id(s) already indexed: {sorted(duplicates)}")
        if not batch:
            return []
        new_rows = self._append_rows(batch, warm)
        if self._resolution is not None:
            self._extend_resolution(new_rows)
        return [record.record_id for record in batch]

    def _append_rows(self, batch: list[Record], warm: bool) -> list[int]:
        """Sign, encode and append validated records; returns their new rows.

        All throwing work (shingling, the signature kernel, attribute
        encoding) happens before the first mutation, so a failure leaves the
        index untouched — the exception-safety building block :meth:`add`
        and :meth:`upsert` both build their all-or-nothing contract on.
        Resolution maintenance is the *caller's* job: :meth:`upsert` must
        repair the state for replaced rows before extending it with new ones.
        """
        id_map = self._ensure_id_map()
        hashes = [self._computer.shingle_hashes(record) for record in batch]
        nonempty = [h for h in hashes if h is not None]
        signatures = self._computer.signature_matrix(nonempty)

        base = self.n_rows
        full = np.zeros((len(batch), self.config.num_perm), dtype=np.uint64)
        keys = np.zeros((len(batch), self.config.bands), dtype=np.uint64)
        nonempty_offsets = np.fromiter(
            (i for i, h in enumerate(hashes) if h is not None), dtype=np.intp
        )
        if len(nonempty_offsets):
            full[nonempty_offsets] = signatures
            keys[nonempty_offsets] = self._computer.band_hashes(signatures)

        record_ids = [record.record_id for record in batch]
        shard_ids = shard_of(record_ids, self.config.shards)
        self._storage.append(
            record_ids,
            [encode_attributes(record.attributes) for record in batch],
            hashes,
            full.astype(np.uint16),
            keys,
            shard_ids,
        )
        if len(self._record_cache) + len(batch) <= RECORD_CACHE_LIMIT:
            for offset, record in enumerate(batch):
                self._record_cache[base + offset] = record
        for offset, record_id in enumerate(record_ids):
            id_map[record_id] = base + offset
        self._n_live += len(batch)
        self._added_total += len(batch)
        self._metric_added.inc(len(batch))
        self._sync_gauges()

        touched: set[int] = set()
        if len(nonempty_offsets):
            rows = (base + nonempty_offsets).astype(np.int64)
            touched = self._postings.add(
                rows, keys[nonempty_offsets], shard_ids[nonempty_offsets]
            )
        self._mark_dirty(_COLUMN_PAYLOAD_NAMES, touched)
        if warm:
            self._warm_normalization(batch)
        return list(range(base, base + len(batch)))

    def _warm_normalization(self, batch: list[Record]) -> None:
        """Pre-normalize indexed attribute values into the extractor cache.

        Queries then only pay normalization for the probe record's values;
        the corpus side is already cached.  The Boolean extractor keeps no
        normalization cache, so this is a no-op for rule pipelines.
        """
        normalize_cached = getattr(self._extractor, "_normalize_cached", None)
        if normalize_cached is None:
            return
        for record in batch:
            for column in self._extractor.matched_columns:
                normalize_cached(record.value(column))

    # ------------------------------------------------------------- upsert
    def upsert(self, records, insert_missing: bool = True) -> dict:
        """Atomically replace — or insert — records; one logical step each.

        For every record whose id is already live, the old row is
        tombstoned and the new one appended (the record moves to the *end*
        of insertion order, exactly as a ``remove`` + ``add`` would place
        it); ids not yet indexed are plain inserts, unless
        ``insert_missing=False`` turns them into a
        :class:`~repro.exceptions.DatasetError` (strict update mode).
        Returns ``{"updated": [ids], "inserted": [ids]}`` in batch order.

        The operation is **all-or-nothing**: coercion, duplicate-in-batch
        detection, the strict-mode membership check and every throwing
        computation (shingling, the signature kernel, attribute encoding)
        run before the first mutation, so a failed upsert leaves the index —
        and its cached resolution state — exactly as it was.  Saves stay
        dirty-only: an upsert dirties the columns, the touched posting
        shards and the live mask, never clean shards.

        The cached resolution state survives: replaced rows are repaired out
        via the accepted-pair log (:meth:`_repair_resolution` — no
        re-scoring) and the new rows are folded in incrementally, provably
        equal to a from-scratch :meth:`resolve` over the resulting corpus.
        """
        batch = self._coerce_batch(records)
        id_map = self._ensure_id_map()
        duplicates = self._batch_duplicates(batch)
        if duplicates:
            raise DatasetError(
                f"record id(s) repeated in upsert batch: {duplicates}"
            )
        updated = [r.record_id for r in batch if r.record_id in id_map]
        inserted = [r.record_id for r in batch if r.record_id not in id_map]
        if not insert_missing and inserted:
            raise DatasetError(f"record id(s) not in index: {sorted(inserted)}")
        if not batch:
            return {"updated": [], "inserted": []}
        old_rows = [id_map[record_id] for record_id in updated]
        # -- mutation starts here; nothing below raises on valid input ----
        new_rows = self._append_rows(batch, warm=True)
        live = self._live
        for row in old_rows:
            live[row] = False
            self._record_cache.pop(row, None)
            self._shingle_sets.pop(row, None)
        self._n_tombstones += len(old_rows)
        self._n_live -= len(old_rows)
        self._metric_upserts.inc(len(batch))
        self._sync_gauges()
        if old_rows:
            self._mark_dirty((INDEX_LIVE_PAYLOAD,))
        if self._resolution is not None:
            if updated:
                self._repair_resolution(set(updated))
            self._extend_resolution(new_rows)
        self._maybe_compact()
        return {"updated": updated, "inserted": inserted}

    # -------------------------------------------------------------- remove
    def remove(self, record_ids) -> int:
        """Tombstone records by id; returns the number removed.

        Unknown (or already removed) ids raise
        :class:`~repro.exceptions.DatasetError` before any state changes.
        Tombstoned rows stay in the columns and posting shards — masked out
        of every query — until compaction; only the live-mask payload is
        dirtied, so an in-place save after removes rewrites one small file.
        The rows' record-cache and shingle-set entries are evicted with
        them, so tombstones never pin payloads in RAM.  Cached resolution
        state is *repaired in place* (accepted pairs incident to the dead
        rows are dropped and the log replayed — :meth:`_repair_resolution`),
        so the next :meth:`resolve` costs union ops, not a corpus rescore.
        """
        if isinstance(record_ids, str):
            record_ids = [record_ids]
        # Order-preserving dedup: mentioning an id twice in one call is one
        # removal, keeping the loop below exception-safe after the precheck.
        ids = list(dict.fromkeys(str(record_id) for record_id in record_ids))
        id_map = self._ensure_id_map()
        missing = sorted({record_id for record_id in ids if record_id not in id_map})
        if missing:
            raise DatasetError(f"record id(s) not in index: {missing}")
        live = self._live
        for record_id in ids:
            row = id_map.pop(record_id)
            live[row] = False
            self._record_cache.pop(row, None)
            self._shingle_sets.pop(row, None)
        self._n_tombstones += len(ids)
        self._n_live -= len(ids)
        self._metric_removed.inc(len(ids))
        self._sync_gauges()
        self._repair_resolution(set(ids))
        self._mark_dirty((INDEX_LIVE_PAYLOAD,))
        self._maybe_compact()
        return len(ids)

    def _maybe_compact(self) -> None:
        """Compact when tombstones cross ``config.compaction_threshold``."""
        if (
            self.n_rows
            and self.config.compaction_threshold < 1.0
            and self._n_tombstones / self.n_rows > self.config.compaction_threshold
        ):
            self.compact()

    def compact(self) -> int:
        """Physically drop tombstoned rows; returns the number reclaimed.

        Survivor order (and therefore query output order) is unchanged:
        compaction renumbers rows but preserves insertion order, so the index
        stays aligned with its batch-equivalent corpus.  All over-allocated
        tail capacity is reclaimed — the post-compaction resident footprint
        is exactly the surviving rows (columns gathered off any memory-mapped
        bases become resident).  With zero tombstones this degenerates to a
        pure capacity shrink that leaves payload bytes (and clean-payload
        bookkeeping) untouched.
        """
        reclaimed = self._n_tombstones
        if reclaimed == 0:
            self._storage.shrink()
            return 0
        keep = np.flatnonzero(self._live)
        self._storage.compact(keep)
        rows = np.fromiter(
            (
                row
                for row in range(len(keep))
                if self._storage.shingles.row_length(row)
            ),
            dtype=np.int64,
        )
        self._postings = ShardedPostings.rebuild(
            self.config.bands,
            self.config.shards,
            rows,
            self._storage.band_keys.take(rows),
            self._storage.shard_ids.array[rows],
        )
        self._postings.lookup_timer = self._metric_lookup
        self._n_tombstones = 0
        self._sync_gauges()
        self._id_map = None
        self._record_cache.clear()
        self._shingle_sets.clear()
        self._clean = {}
        self._drop_fanout()
        return int(reclaimed)

    # --------------------------------------------------------------- query
    def _collision_rows(self, keys: np.ndarray) -> np.ndarray:
        """Live rows colliding with the given band keys, ascending and unique.

        Fans out across posting shards — via the persistent process pool for
        a pristine artifact-backed index, in-process otherwise — and merges
        with a union, which is shard-partition invariant.
        """
        if self._fanout is not None:
            rows = self._fanout.collision_rows(np.asarray(keys, dtype=np.uint64))
        else:
            rows = self._postings.collision_rows(keys)
        if not len(rows):
            return rows
        return rows[self._live[rows]]

    def _shingle_set(self, row: int) -> set[int]:
        cached = self._shingle_sets.get(row)
        if cached is None:
            cached = self._shingle_sets[row] = set(
                self._storage.shingles.row(row).tolist()
            )
        return cached

    def _verify_rows(
        self, probe16: np.ndarray, hashes: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Apply the configured verification pass to candidate rows.

        Identical decisions to the batch blocker: signature-agreement
        estimate with a 2σ recall slack, optionally re-scored by exact
        shingle-set Jaccard (both sides' shingles are cached).  ``probe16``
        is the probe's 16-bit signature — the only resolution verification
        ever uses, which is why the full 64-bit signatures are not stored.
        """
        verify = self.config.verify_threshold
        if verify is None or not len(rows):
            return rows
        estimates = SignatureComputer.estimate_agreement(
            probe16,
            self._storage.sig16.take(rows),
            np.zeros(len(rows), dtype=np.intp),
            np.arange(len(rows), dtype=np.intp),
        )
        rows = rows[SignatureComputer.verification_mask(estimates, verify, self.config.num_perm)]
        if not self.config.exact_verify or not len(rows):
            return rows
        query_set = set(hashes.tolist())
        survivors = [
            row
            for row in rows.tolist()
            if SignatureComputer.exact_jaccard(query_set, self._shingle_set(row)) >= verify
        ]
        return np.asarray(survivors, dtype=np.int64)

    def _trim_extractor_cache(self) -> None:
        """Bound the persistent extractor's memoization against probe churn."""
        value_cache = getattr(self._extractor, "_value_cache", None)
        if value_cache is not None and len(value_cache) > EXTRACTOR_CACHE_LIMIT:
            self._extractor.clear_cache()

    def _score_rows(
        self, record: Record, rows: np.ndarray, min_score: float | None = None
    ) -> list[MatchScore]:
        """Score ``record`` against corpus rows with the pipeline's predictor.

        Chunked like :meth:`MatchingPipeline.match` (chunking never changes
        scores); one shared scoring cascade keeps the two paths bit-identical.
        With ``min_score`` the cascade may drop candidates whose score is
        provably below the floor without fully scoring them — exactly the
        rows :meth:`_filter_scores` would discard anyway.
        """
        chunk_size = self.pipeline.config.chunk_size
        row_list = rows.tolist()
        results: list[MatchScore] = []
        for start in range(0, len(row_list), chunk_size):
            chunk_rows = row_list[start : start + chunk_size]
            pairs = [CandidatePair(record, self._record_at(row)) for row in chunk_rows]
            kept, scores, predictions = self._cascade.score_chunk(
                pairs, floors=min_score
            )
            for offset, score, prediction in zip(kept.tolist(), scores, predictions):
                results.append(
                    MatchScore(
                        left_id=record.record_id,
                        right_id=pairs[offset].right.record_id,
                        score=float(score),
                        is_match=bool(prediction),
                    )
                )
        return results

    @staticmethod
    def _filter_scores(
        results: list[MatchScore], top_k: int | None, min_score: float | None
    ) -> list[MatchScore]:
        """Apply the ``min_score`` / ``top_k`` post-filter of :meth:`query`.

        One shared filter for the single and batched query paths, so the two
        can never disagree on ordering or truncation semantics.
        """
        if min_score is not None:
            results = [result for result in results if result.score >= min_score]
        if top_k is not None:
            # Always sorted, not just when truncating: the ordering contract
            # must not flip based on how many candidates survived.
            results = sorted(results, key=lambda result: -result.score)[:top_k]
        return results

    def query(
        self,
        record,
        top_k: int | None = None,
        min_score: float | None = None,
    ) -> list[MatchScore]:
        """Match one record against the indexed corpus.

        Returns scored pairs bit-identical to a batch
        ``pipeline.match([record], corpus)`` under the index's blocking
        config — same candidate set, same score floats, same order — filtered
        to ``score >= min_score`` when given.  With ``top_k`` set, results
        are instead returned highest-score first (ties broken by corpus
        order), truncated to ``top_k``.

        A record with no usable text (all attributes missing/empty) collides
        with nothing and returns ``[]``.
        """
        if top_k is not None and top_k < 1:
            raise ConfigurationError("top_k must be at least 1 or None")
        with span("index.query") as query_span:
            probe = coerce_record(record)
            hashes = self._computer.shingle_hashes(probe)
            if hashes is None or not self._n_live:
                return []
            with span("query.block") as block_span:
                signature = self._computer.signature_matrix([hashes])
                keys = self._computer.band_hashes(signature)[0]
                rows = self._collision_rows(keys)
                block_span.annotate(collisions=int(len(rows)))
            with span("query.verify") as verify_span:
                rows = self._verify_rows(signature.astype(np.uint16), hashes, rows)
                verify_span.annotate(candidates=int(len(rows)))
            if not len(rows):
                return []
            with span("query.score"):
                results = self._score_rows(probe, rows, min_score)
            query_span.annotate(results=len(results))
            self._trim_extractor_cache()
            return self._filter_scores(results, top_k, min_score)

    @staticmethod
    def _broadcast_option(name: str, value, count: int) -> list:
        """Expand a scalar-or-sequence query option to one value per probe."""
        if isinstance(value, (list, tuple)):
            if len(value) != count:
                raise ConfigurationError(
                    f"{name} sequence has {len(value)} entries for {count} records"
                )
            return list(value)
        return [value] * count

    def query_batch(
        self,
        records,
        top_k=None,
        min_score=None,
    ) -> list[list[MatchScore]]:
        """Match several records in one coalesced pass over the index.

        Semantically ``[query(r, top_k, min_score) for r in records]`` —
        bit-identical results, probe order preserved — but the work is
        batched: probe signatures are computed with one vectorized MinHash
        kernel and all surviving (probe, candidate) pairs are concatenated
        into shared scoring chunks, so N concurrent probes cost one
        vectorized scoring call instead of N (the serving daemon's request
        coalescing builds on exactly this method).  Chunk composition never
        changes scores — the same guarantee batch ``match`` makes for its
        ``chunk_size`` — which is what keeps the batched path bit-identical
        to the one-at-a-time path.

        ``top_k`` and ``min_score`` accept a scalar (applied to every probe)
        or a sequence aligned with ``records`` (per-probe settings, as when
        coalescing independent callers).
        """
        probes = [coerce_record(obj) for obj in records]
        top_ks = self._broadcast_option("top_k", top_k, len(probes))
        min_scores = self._broadcast_option("min_score", min_score, len(probes))
        for k in top_ks:
            if k is not None and k < 1:
                raise ConfigurationError("top_k must be at least 1 or None")
        results: list[list[MatchScore]] = [[] for _ in probes]
        if not probes:
            return results

        hashes_list = [self._computer.shingle_hashes(probe) for probe in probes]
        pairs: list[CandidatePair] = []
        owners: list[int] = []
        with span("query.block") as block_span:
            if self._n_live:
                usable = [
                    i for i, hashes in enumerate(hashes_list) if hashes is not None
                ]
                if usable:
                    signatures = self._computer.signature_matrix(
                        [hashes_list[i] for i in usable]
                    )
                    keys = self._computer.band_hashes(signatures)
                    for offset, i in enumerate(usable):
                        rows = self._collision_rows(keys[offset])
                        rows = self._verify_rows(
                            signatures[offset : offset + 1].astype(np.uint16),
                            hashes_list[i],
                            rows,
                        )
                        for row in rows.tolist():
                            pairs.append(CandidatePair(probes[i], self._record_at(row)))
                            owners.append(i)
            block_span.annotate(probes=len(probes), candidates=len(pairs))

        chunk_size = self.pipeline.config.chunk_size
        with span("query.score"):
            for start in range(0, len(pairs), chunk_size):
                chunk = pairs[start : start + chunk_size]
                # Per-pair floors: each pair inherits its owning probe's
                # min_score, so coalesced chunks prune exactly as the
                # equivalent one-at-a-time queries would.
                floors = [
                    min_scores[owners[start + offset]] for offset in range(len(chunk))
                ]
                kept, scores, predictions = self._cascade.score_chunk(
                    chunk, floors=floors
                )
                for offset, score, prediction in zip(kept.tolist(), scores, predictions):
                    pair = chunk[offset]
                    results[owners[start + offset]].append(
                        MatchScore(
                            left_id=pair.left.record_id,
                            right_id=pair.right.record_id,
                            score=float(score),
                            is_match=bool(prediction),
                        )
                    )
        if pairs:
            self._trim_extractor_cache()
        return [
            self._filter_scores(result, k, floor)
            for result, k, floor in zip(results, top_ks, min_scores)
        ]

    # ------------------------------------------------------------- resolve
    def _candidate_rows_below(self, row: int) -> np.ndarray:
        """Verified live candidate rows ``c < row`` colliding with ``row``.

        The self-join building block of :meth:`resolve`: restricting to
        earlier rows counts each unordered pair exactly once, and makes the
        incremental path (new rows against everything before them) provably
        equal to a full recompute.
        """
        hashes = self._storage.shingle_row(row)
        if hashes is None:
            return np.empty(0, dtype=np.int64)
        rows = self._collision_rows(np.asarray(self._storage.band_keys.row(row)))
        rows = rows[rows < row]
        return self._verify_rows(
            self._storage.sig16.take(np.asarray([row], dtype=np.int64)), hashes, rows
        )

    def _union_accepted(self, state: dict, pairs: list[tuple[int, int]]) -> None:
        """Score row pairs in chunks and union the accepted ones.

        A pair is accepted when the predictor calls it a match and (when
        ``min_score`` is set) its score reaches the floor — the same
        acceptance rule however the pairs were discovered, which is what
        makes incremental and full resolution agree.  Every accepted pair
        is also appended to the state's pair log, the structure
        :meth:`_repair_resolution` replays after removals.
        """
        min_score = state["min_score"]
        uf: UnionFind = state["uf"]
        log: list[tuple[str, str]] = state["pairs"]
        chunk_size = self.pipeline.config.chunk_size
        for start in range(0, len(pairs), chunk_size):
            chunk = pairs[start : start + chunk_size]
            candidates = [
                CandidatePair(self._record_at(first), self._record_at(second))
                for first, second in chunk
            ]
            # accept_only: resolution only ever unions accepted pairs, so
            # candidates provably below the acceptance threshold (or the
            # score floor) can be pruned without changing the clustering.
            kept, scores, predictions = self._cascade.score_chunk(
                candidates, floors=min_score, accept_only=True
            )
            for offset, score, prediction in zip(kept.tolist(), scores, predictions):
                if prediction and (min_score is None or float(score) >= min_score):
                    pair = candidates[offset]
                    uf.union(pair.left.record_id, pair.right.record_id)
                    log.append((pair.left.record_id, pair.right.record_id))
        self._trim_extractor_cache()

    def _extend_resolution(self, new_rows: list[int]) -> None:
        """Incrementally fold newly added rows into the resolution state."""
        state = self._resolution
        pairs = []
        for row in new_rows:
            state["uf"].add(self._storage.record_id(row))
            for other in self._candidate_rows_below(row).tolist():
                pairs.append((other, row))
        self._union_accepted(state, pairs)

    def _repair_resolution(self, dead_ids: set[str]) -> None:
        """Scoped repair of the cached resolution state after rows died.

        Union-find cannot split, but it never has to: a pair's candidacy
        (band collision + verification) and acceptance (its score) are both
        functions of the two records alone, so removing a row deletes
        exactly the accepted pairs *incident to it* — every pair among the
        survivors stays accepted and no new pair can appear.  Replaying the
        surviving entries of the accepted-pair log therefore rebuilds the
        union-find exactly as a from-scratch :meth:`resolve` over the live
        corpus would (property-tested): components untouched by the dead
        rows replay unchanged, touched components fall apart into whatever
        the remaining edges still connect.  Cost is O(log) union-find
        operations and **zero candidate scoring** — the difference the
        churn benchmark (``benchmarks/test_index_churn.py``) gates at ≥10×.
        """
        state = self._resolution
        if state is None:
            return
        survivors = [
            pair
            for pair in state["pairs"]
            if pair[0] not in dead_ids and pair[1] not in dead_ids
        ]
        uf = UnionFind()
        for left_id, right_id in survivors:
            uf.union(left_id, right_id)
        state["pairs"] = survivors
        state["uf"] = uf
        self._metric_repairs.inc()

    def resolve(self, min_score: float | None = None) -> list[list[str]]:
        """Cluster the live corpus into entities; returns stable clusters.

        Runs union-find over all accepted match pairs among live records
        (candidates from the band index, verified and scored exactly like
        :meth:`query`).  Output is a partition of the live record ids:
        lexicographically sorted clusters, ordered by first member,
        singletons included — identical whether the state was built
        incrementally by :meth:`add` / :meth:`upsert` / :meth:`remove` or
        recomputed from scratch.

        ``min_score`` defaults to ``config.resolve_min_score``.  The computed
        state is cached and maintained incrementally across every mutation
        (adds extend it, removals and upserts repair it via the accepted-pair
        log); only the first call — or a call with a different ``min_score``
        — pays a full recompute (counted in ``stats()``).
        """
        if min_score is None:
            min_score = self.config.resolve_min_score
        state = self._resolution
        if state is None or state["min_score"] != min_score:
            state = {
                "min_score": min_score,
                "uf": UnionFind(self.record_ids()),
                "pairs": [],
            }
            pairs = []
            for row in np.flatnonzero(self._live).tolist():
                for other in self._candidate_rows_below(row).tolist():
                    pairs.append((other, row))
            self._union_accepted(state, pairs)
            self._resolution = state
            self._metric_recomputes.inc()
        return stable_clusters(state["uf"], self.record_ids())

    # --------------------------------------------------------- persistence
    def save(self, path) -> dict:
        """Persist pipeline and index as one artifact; returns the manifest.

        The directory is a superset of a pipeline artifact — a plain
        :meth:`MatchingPipeline.load` on it ignores the index payloads — with
        every column and posting shard in its own content-addressed ``.npy``
        payload (resolved and verified via the manifest's ``payloads``
        section, so in-place updates are crash-safe) and an ``index``
        manifest section carrying its own format version and config.

        Payload bytes are a pure function of the logical add/upsert/remove
        history — never of batching, compaction timing or reloads — so
        saving the same history twice is byte-identical (an upsert saves
        exactly as the equivalent remove + add would), and an in-place
        re-save writes only the payloads whose columns actually changed: a
        remove rewrites the small live mask, an add leaves untouched posting
        shards' files alone (dirty-only writes, asserted by the stream/shard
        tests).
        """
        self._postings.freeze()
        body = self.pipeline._manifest_body()
        body["index"] = {
            "format_version": INDEX_FORMAT_VERSION,
            "config": self.config.to_dict(),
            "shards": self.config.shards,
            "stats": {
                "records": len(self),
                "rows": self.n_rows,
                "tombstones": self._n_tombstones,
            },
            "state": {"added_total": self._added_total},
        }
        storage = self._storage
        payloads: dict[str, bytes | PayloadRef] = {}

        def put(name: str, make) -> None:
            ref = self._clean.get(name)
            payloads[name] = ref if ref is not None else make()

        put(INDEX_SIG16_PAYLOAD, lambda: _npy_bytes(storage.sig16.to_array()))
        put(INDEX_BAND_KEYS_PAYLOAD, lambda: _npy_bytes(storage.band_keys.to_array()))
        put(INDEX_LIVE_PAYLOAD, lambda: _npy_bytes(storage.live.to_array()))
        put(INDEX_SHARD_IDS_PAYLOAD, lambda: _npy_bytes(storage.shard_ids.to_array()))
        for arena, data_name, offsets_name in (
            (storage.shingles, INDEX_SHINGLES_PAYLOAD, INDEX_SHINGLE_OFFSETS_PAYLOAD),
            (storage.ids, INDEX_IDS_PAYLOAD, INDEX_ID_OFFSETS_PAYLOAD),
            (storage.attrs, INDEX_ATTRS_PAYLOAD, INDEX_ATTR_OFFSETS_PAYLOAD),
        ):
            if data_name in self._clean and offsets_name in self._clean:
                payloads[data_name] = self._clean[data_name]
                payloads[offsets_name] = self._clean[offsets_name]
            else:
                data, offsets = arena.to_parts()
                payloads[data_name] = _npy_bytes(data)
                payloads[offsets_name] = _npy_bytes(offsets)
        for shard_index, shard in enumerate(self._postings.shards):
            names = shard_payload_names(shard_index)
            if all(name in self._clean for name in names):
                for name in names:
                    payloads[name] = self._clean[name]
            else:
                for name, part in zip(names, shard.to_parts()):
                    payloads[name] = _npy_bytes(part)
        manifest = write_artifact(
            path, body, self.pipeline._inference_state(), payloads=payloads
        )
        self._adopt_payloads(Path(path), manifest)
        return manifest

    def _adopt_payloads(self, directory: Path, manifest: dict) -> None:
        """Mark every index payload clean, ref'd into the given artifact."""
        clean: dict[str, PayloadRef] = {}
        for name, entry in (manifest.get("payloads") or {}).items():
            if name == INDEX_STATE_PAYLOAD or not name.startswith("index/"):
                continue
            clean[name] = PayloadRef(
                directory / entry["file"], entry["sha256"], int(entry["bytes"])
            )
        self._clean = clean

    @classmethod
    def load(
        cls,
        path,
        mmap: bool = True,
        query_jobs: int = 1,
        registry: MetricsRegistry | None = None,
    ) -> "MatchIndex":
        """Reload a persisted index (pipeline included) from an artifact.

        Columnar (version-2) payloads are **memory-mapped read-only** when
        ``mmap`` is true: startup is O(1) — manifest, headers and the small
        always-resident vectors — and column bytes page in on demand, so a
        million-record index serves its first query milliseconds after
        ``load`` returns.  Version-1 artifacts load through the legacy
        pickled-state path and upgrade to the columnar layout on the next
        :meth:`save`.

        With ``query_jobs > 1`` on a multi-shard artifact, candidate lookups
        fan out over a persistent process pool whose workers memory-map the
        posting shards independently; the fan-out is dropped on the first
        mutation (workers only see the immutable artifact bytes).

        Raises :class:`~repro.exceptions.ArtifactError` when the artifact
        carries no index payloads, the payload version is unsupported, or
        any file fails its manifest check.  A reloaded index answers queries
        bit-identically to the one that was saved.
        """
        directory = Path(path)
        manifest = read_manifest(directory)
        section = manifest.get("index")
        if section is None:
            raise ArtifactError(
                f"artifact {str(path)!r} holds no match index "
                f"(a plain pipeline artifact? use MatchingPipeline.load)"
            )
        version = section.get("format_version")
        if version not in INDEX_SUPPORTED_VERSIONS:
            raise ArtifactError(
                f"index payload version {version!r} is not supported "
                f"(supported: {sorted(INDEX_SUPPORTED_VERSIONS)}); "
                f"rebuild the index or upgrade repro"
            )
        pipeline = MatchingPipeline.load(directory)
        # An explicit registry (the serving daemon's hot-reload path passes
        # its own) keeps metric series monotone across index swaps.
        index = cls(
            pipeline,
            IndexConfig.from_dict(section.get("config", {})),
            registry=registry,
        )
        if version == 1:
            state = pickle.loads(read_payload(directory, INDEX_STATE_PAYLOAD))
            index._install_legacy_state(state)
            return index
        index._install_payloads(directory, manifest, section, mmap=mmap)
        if query_jobs > 1 and index.config.shards > 1:
            shard_paths = [
                tuple(
                    read_payload_path(directory, name, manifest)[0]
                    for name in shard_payload_names(shard_index)
                )
                for shard_index in range(index.config.shards)
            ]
            index._fanout = ShardFanout(shard_paths, index.config.bands, query_jobs)
            index._fanout.lookup_timer = index._metric_lookup
        return index

    def _install_payloads(
        self, directory: Path, manifest: dict, section: dict, mmap: bool
    ) -> None:
        """Adopt version-2 columnar payloads (memory-mapped when possible)."""
        config = self.config

        def load_array(name: str, mapped: bool = True) -> np.ndarray:
            payload_path, _ = read_payload_path(directory, name, manifest)
            if mmap and mapped:
                try:
                    return np.load(payload_path, mmap_mode="r")
                except (OSError, ValueError):
                    pass  # zero-length arrays cannot be mapped on every platform
            return np.load(payload_path)

        storage = self._storage
        storage.sig16 = GrowableMatrix(
            np.uint16, config.num_perm, base=load_array(INDEX_SIG16_PAYLOAD)
        )
        storage.band_keys = GrowableMatrix(
            np.uint64, config.bands, base=load_array(INDEX_BAND_KEYS_PAYLOAD)
        )
        storage.shingles = Arena(
            np.uint64,
            load_array(INDEX_SHINGLES_PAYLOAD),
            load_array(INDEX_SHINGLE_OFFSETS_PAYLOAD),
        )
        storage.ids = Arena(
            np.uint8, load_array(INDEX_IDS_PAYLOAD), load_array(INDEX_ID_OFFSETS_PAYLOAD)
        )
        storage.attrs = Arena(
            np.uint8,
            load_array(INDEX_ATTRS_PAYLOAD),
            load_array(INDEX_ATTR_OFFSETS_PAYLOAD),
        )
        # The live mask mutates in place and shard ids are consulted per
        # mutation — both stay resident (they are tiny: 5 bytes/row).
        storage.live = GrowableVector(bool, load_array(INDEX_LIVE_PAYLOAD, mapped=False))
        storage.shard_ids = GrowableVector(
            np.uint32, load_array(INDEX_SHARD_IDS_PAYLOAD, mapped=False)
        )
        n = storage.n_rows
        if not (
            len(storage.sig16)
            == len(storage.band_keys)
            == len(storage.shingles)
            == len(storage.ids)
            == len(storage.attrs)
            == len(storage.shard_ids)
            == n
        ):
            raise ArtifactError(
                f"artifact {str(directory)!r}: index columns disagree on row count"
            )
        shards = []
        for shard_index in range(config.shards):
            keys_name, rows_name, offsets_name = shard_payload_names(shard_index)
            shards.append(
                ShardPostings(
                    config.bands,
                    keys=load_array(keys_name),
                    rows=load_array(rows_name),
                    offsets=np.asarray(load_array(offsets_name, mapped=False)),
                )
            )
        self._postings = ShardedPostings(config.bands, config.shards, shards)
        self._postings.lookup_timer = self._metric_lookup
        self._n_live = int(np.count_nonzero(storage.live.array))
        self._n_tombstones = n - self._n_live
        self._sync_gauges()
        state = section.get("state") or {}
        self._added_total = int(state.get("added_total", n))
        # Deferred until the first mutation / membership check: building the
        # id map is the one O(n) decode a cold start must not pay.
        self._id_map = None
        self._adopt_payloads(directory, manifest)

    def _install_legacy_state(self, state: dict) -> None:
        """Rebuild columnar state from a version-1 pickled payload.

        Everything is marked dirty, so the next :meth:`save` upgrades the
        artifact to the columnar layout (and drops the pickle payload).
        """
        records = [
            Record(record_id=record_id, attributes=attributes)
            for record_id, attributes in state["records"]
        ]
        shingles = [
            None if hashes is None else np.array(hashes, dtype=np.uint64)
            for hashes in state["shingles"]
        ]
        signatures = np.array(state["signatures"], dtype=np.uint64)
        band_keys = np.zeros((len(records), self.config.bands), dtype=np.uint64)
        rows = np.fromiter(
            (row for row, hashes in enumerate(shingles) if hashes is not None),
            dtype=np.int64,
        )
        if len(rows):
            band_keys[rows] = self._computer.band_hashes(signatures[rows])
        record_ids = [record.record_id for record in records]
        shard_ids = shard_of(record_ids, self.config.shards)
        self._storage.append(
            record_ids,
            [encode_attributes(record.attributes) for record in records],
            shingles,
            signatures.astype(np.uint16),
            band_keys,
            shard_ids,
        )
        live = np.array(state["live"], dtype=bool)
        self._live[:] = live
        self._postings = ShardedPostings.rebuild(
            self.config.bands, self.config.shards, rows, band_keys[rows], shard_ids[rows]
        )
        self._postings.lookup_timer = self._metric_lookup
        self._n_tombstones = int(state["n_tombstones"])
        self._n_live = int(np.count_nonzero(live))
        self._sync_gauges()
        self._added_total = int(state["added_total"])
        self._id_map = {
            record_ids[row]: row for row in np.flatnonzero(live).tolist()
        }
        if len(records) <= RECORD_CACHE_LIMIT:
            self._record_cache = dict(enumerate(records))
