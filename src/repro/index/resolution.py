"""Entity resolution over accepted match pairs: union-find and clusters.

The :class:`~repro.index.MatchIndex` turns pairwise match decisions into
entities by connected components: every accepted pair ``(a, b)`` merges the
entities containing ``a`` and ``b``.  :class:`UnionFind` implements the
classic disjoint-set forest (union by size, path compression — effectively
O(α(n)) per operation) with a fully deterministic representative choice, so
cluster output never depends on iteration order of intermediate unions.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["UnionFind", "stable_clusters"]


class UnionFind:
    """Disjoint-set forest over arbitrary hashable items.

    Items are added lazily (:meth:`add` / first :meth:`union` / :meth:`find`).
    Merging is union-by-size with a deterministic tie-break on insertion
    order, so the same union sequence always yields the same internal state —
    a prerequisite for the index's reproducibility guarantees.
    """

    def __init__(self, items: Iterable[Hashable] = ()):
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        self._order: dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def add(self, item: Hashable) -> None:
        """Register an item as its own singleton set (no-op when present)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            self._order[item] = len(self._order)

    def find(self, item: Hashable) -> Hashable:
        """Representative of the set containing ``item`` (path-compressed)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets containing ``a`` and ``b``; True when they differed.

        The larger set's representative wins; equal sizes keep the earlier-
        inserted representative, so the forest shape is a pure function of
        the (insertion, union) sequence.
        """
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if (self._size[root_b], -self._order[root_b]) > (self._size[root_a], -self._order[root_a]):
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return True

    def groups(self) -> dict[Hashable, list[Hashable]]:
        """All sets, keyed by representative, members in insertion order."""
        grouped: dict[Hashable, list[Hashable]] = {}
        for item in self._parent:
            grouped.setdefault(self.find(item), []).append(item)
        return grouped


def stable_clusters(uf: UnionFind, items: Iterable[str]) -> list[list[str]]:
    """Partition ``items`` into sorted clusters, deterministically ordered.

    Each cluster is the subset of ``items`` sharing a union-find set
    (singletons included), sorted lexicographically; clusters are ordered by
    their first member.  Output therefore depends only on the partition, not
    on union order or index insertion history.
    """
    grouped: dict[Hashable, list[str]] = {}
    for item in items:
        grouped.setdefault(uf.find(item), []).append(item)
    clusters = [sorted(members) for members in grouped.values()]
    clusters.sort(key=lambda cluster: cluster[0])
    return clusters
