"""Columnar row storage for the match index: frozen bases + growable tails.

The index's per-record state (16-bit signatures, band keys, shingle hashes,
record ids and attributes, the live mask) lives in a handful of numpy columns
instead of per-record Python objects.  Each column is split into

* a **frozen base** — an exact-size array that may be a read-only
  ``np.memmap`` straight out of an artifact payload (demand-paged, never
  copied at load), and
* a **RAM tail** — geometrically grown storage for rows appended after the
  base was frozen, so a trickle of single-record ``add()`` calls stays
  O(batch) amortized without ever touching the base.

Row ``i`` resolves to the base when ``i < len(base)`` and to the tail
otherwise; ``compact(keep)`` gathers the surviving rows into a fresh
exact-size RAM base and drops all over-allocated tail capacity (the
post-compaction resident footprint shrinks, asserted by the storage tests).

Variable-length rows (shingle hash arrays, encoded record bytes) use the
same split over an *arena* — one flat data array plus an ``int64`` offsets
array of length ``rows + 1`` — with the tail kept as per-batch chunks so a
bulk build appends whole batches without per-row Python overhead.

Serialization is canonical: :meth:`~GrowableMatrix.to_array` /
:meth:`~Arena.to_parts` emit contiguous arrays with fixed dtypes whose
``.npy`` encoding depends only on the logical row contents — never on how
the rows were batched, grown or reloaded — which is what keeps artifact
bytes a pure function of the add/remove history.
"""

from __future__ import annotations

import json
from bisect import bisect_right

import numpy as np

__all__ = [
    "Arena",
    "GrowableMatrix",
    "GrowableVector",
    "IndexStorage",
    "decode_attributes",
    "encode_attributes",
]


def _nbytes(array: np.ndarray | None) -> int:
    return 0 if array is None else int(array.nbytes)


def _is_mapped(array: np.ndarray) -> bool:
    return isinstance(array, np.memmap)


class GrowableMatrix:
    """A 2-D column (fixed row width): frozen base + geometric RAM tail."""

    def __init__(self, dtype, width: int, base: np.ndarray | None = None):
        self.dtype = np.dtype(dtype)
        self.width = int(width)
        if base is None:
            base = np.empty((0, self.width), dtype=self.dtype)
        self._base = base
        self._tail = np.empty((0, self.width), dtype=self.dtype)
        self._tail_len = 0

    def __len__(self) -> int:
        return len(self._base) + self._tail_len

    def append(self, block: np.ndarray) -> None:
        block = np.asarray(block, dtype=self.dtype)
        needed = self._tail_len + len(block)
        if needed > len(self._tail):
            capacity = max(needed, 2 * len(self._tail), 64)
            grown = np.empty((capacity, self.width), dtype=self.dtype)
            grown[: self._tail_len] = self._tail[: self._tail_len]
            self._tail = grown
        self._tail[self._tail_len : needed] = block
        self._tail_len = needed

    def row(self, i: int) -> np.ndarray:
        base_n = len(self._base)
        if i < base_n:
            return self._base[i]
        return self._tail[i - base_n]

    def take(self, rows: np.ndarray) -> np.ndarray:
        """Gather rows (ascending or not) into a contiguous RAM array."""
        rows = np.asarray(rows, dtype=np.int64)
        base_n = len(self._base)
        out = np.empty((len(rows), self.width), dtype=self.dtype)
        in_base = rows < base_n
        if in_base.any():
            out[in_base] = self._base[rows[in_base]]
        if not in_base.all():
            out[~in_base] = self._tail[rows[~in_base] - base_n]
        return out

    def to_array(self) -> np.ndarray:
        """The full column as one contiguous RAM array (canonical dtype)."""
        if self._tail_len == 0 and not _is_mapped(self._base):
            return np.ascontiguousarray(self._base, dtype=self.dtype)
        out = np.empty((len(self), self.width), dtype=self.dtype)
        out[: len(self._base)] = self._base
        out[len(self._base) :] = self._tail[: self._tail_len]
        return out

    def compact(self, keep: np.ndarray) -> None:
        """Replace storage with exactly the kept rows (RAM, no spare capacity)."""
        self._base = self.take(keep)
        self._tail = np.empty((0, self.width), dtype=self.dtype)
        self._tail_len = 0

    def shrink(self) -> bool:
        """Fold the tail into an exact-size base; True when capacity dropped."""
        spare = len(self._tail) - self._tail_len
        if spare == 0 and self._tail_len == 0:
            return False
        self._base = self.to_array()
        self._tail = np.empty((0, self.width), dtype=self.dtype)
        self._tail_len = 0
        return spare > 0

    @property
    def resident_bytes(self) -> int:
        resident = _nbytes(self._tail)
        if not _is_mapped(self._base):
            resident += _nbytes(self._base)
        return resident

    @property
    def mapped_bytes(self) -> int:
        return _nbytes(self._base) if _is_mapped(self._base) else 0


class GrowableVector:
    """A 1-D always-resident column (live mask, shard ids): writable prefix."""

    def __init__(self, dtype, base: np.ndarray | None = None):
        self.dtype = np.dtype(dtype)
        if base is None:
            self._buf = np.empty(0, dtype=self.dtype)
            self._len = 0
        else:
            # Always a RAM copy: the live mask mutates in place and a
            # read-only memmap base would reject the writes.
            self._buf = np.array(base, dtype=self.dtype)
            self._len = len(self._buf)

    def __len__(self) -> int:
        return self._len

    @property
    def array(self) -> np.ndarray:
        """Writable view of the filled prefix."""
        return self._buf[: self._len]

    def append(self, block: np.ndarray) -> None:
        block = np.asarray(block, dtype=self.dtype)
        needed = self._len + len(block)
        if needed > len(self._buf):
            capacity = max(needed, 2 * len(self._buf), 64)
            grown = np.empty(capacity, dtype=self.dtype)
            grown[: self._len] = self._buf[: self._len]
            self._buf = grown
        self._buf[self._len : needed] = block
        self._len = needed

    def to_array(self) -> np.ndarray:
        return np.ascontiguousarray(self.array, dtype=self.dtype)

    def compact(self, keep: np.ndarray) -> None:
        self._buf = np.ascontiguousarray(self.array[keep], dtype=self.dtype)
        self._len = len(self._buf)

    def shrink(self) -> bool:
        spare = len(self._buf) - self._len
        if spare > 0:
            self._buf = self.to_array()
        return spare > 0

    @property
    def resident_bytes(self) -> int:
        return _nbytes(self._buf)


class Arena:
    """Variable-length rows: flat data + offsets base, per-batch tail chunks.

    ``row(i)`` is a zero-copy view; a zero-length row is the arena's encoding
    of "no data" (e.g. an empty-text record's shingle array).
    """

    def __init__(
        self,
        dtype,
        base_data: np.ndarray | None = None,
        base_offsets: np.ndarray | None = None,
    ):
        self.dtype = np.dtype(dtype)
        if base_data is None:
            base_data = np.empty(0, dtype=self.dtype)
            base_offsets = np.zeros(1, dtype=np.int64)
        self._base_data = base_data
        self._base_offsets = base_offsets
        self._chunks: list[tuple[np.ndarray, np.ndarray]] = []
        self._chunk_starts: list[int] = []
        self._n = len(base_offsets) - 1
        self._tail_bytes = 0

    def __len__(self) -> int:
        return self._n

    def append_batch(self, rows: list[np.ndarray]) -> None:
        """Append one batch of rows as a single (data, offsets) chunk."""
        if not rows:
            return
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([len(row) for row in rows], out=offsets[1:])
        data = (
            np.concatenate(rows).astype(self.dtype, copy=False)
            if offsets[-1]
            else np.empty(0, dtype=self.dtype)
        )
        self._chunk_starts.append(self._n)
        self._chunks.append((data, offsets))
        self._n += len(rows)
        self._tail_bytes += data.nbytes + offsets.nbytes

    def row(self, i: int) -> np.ndarray:
        base_n = len(self._base_offsets) - 1
        if i < base_n:
            return self._base_data[self._base_offsets[i] : self._base_offsets[i + 1]]
        chunk_index = bisect_right(self._chunk_starts, i) - 1
        data, offsets = self._chunks[chunk_index]
        j = i - self._chunk_starts[chunk_index]
        return data[offsets[j] : offsets[j + 1]]

    def row_length(self, i: int) -> int:
        base_n = len(self._base_offsets) - 1
        if i < base_n:
            return int(self._base_offsets[i + 1] - self._base_offsets[i])
        chunk_index = bisect_right(self._chunk_starts, i) - 1
        _, offsets = self._chunks[chunk_index]
        j = i - self._chunk_starts[chunk_index]
        return int(offsets[j + 1] - offsets[j])

    def to_parts(self) -> tuple[np.ndarray, np.ndarray]:
        """Canonical contiguous ``(data, offsets)`` for the whole arena."""
        if not self._chunks and not _is_mapped(self._base_data):
            return (
                np.ascontiguousarray(self._base_data, dtype=self.dtype),
                np.ascontiguousarray(self._base_offsets, dtype=np.int64),
            )
        datas = [np.asarray(self._base_data)]
        offsets = np.empty(self._n + 1, dtype=np.int64)
        offsets[: len(self._base_offsets)] = self._base_offsets
        position = len(self._base_offsets) - 1
        total = int(self._base_offsets[-1])
        for data, chunk_offsets in self._chunks:
            datas.append(data)
            count = len(chunk_offsets) - 1
            offsets[position + 1 : position + 1 + count] = chunk_offsets[1:] + total
            position += count
            total += int(chunk_offsets[-1])
        return np.concatenate(datas).astype(self.dtype, copy=False), offsets

    def _install(self, data: np.ndarray, offsets: np.ndarray) -> None:
        self._base_data = data
        self._base_offsets = offsets
        self._chunks = []
        self._chunk_starts = []
        self._n = len(offsets) - 1
        self._tail_bytes = 0

    def compact(self, keep: np.ndarray) -> None:
        """Keep exactly the given rows, in the given order; exact-size RAM."""
        rows = [np.array(self.row(int(i)), dtype=self.dtype) for i in keep]
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([len(row) for row in rows], out=offsets[1:])
        data = (
            np.concatenate(rows).astype(self.dtype, copy=False)
            if rows and offsets[-1]
            else np.empty(0, dtype=self.dtype)
        )
        self._install(data, offsets)

    def shrink(self) -> bool:
        if not self._chunks:
            return False
        data, offsets = self.to_parts()
        self._install(data, offsets)
        return True

    @property
    def resident_bytes(self) -> int:
        resident = self._tail_bytes
        if not _is_mapped(self._base_data):
            resident += _nbytes(self._base_data) + _nbytes(self._base_offsets)
        return resident

    @property
    def mapped_bytes(self) -> int:
        if _is_mapped(self._base_data):
            return _nbytes(self._base_data) + _nbytes(self._base_offsets)
        return 0


def encode_attributes(attributes) -> np.ndarray:
    """A record's attribute mapping as UTF-8 JSON bytes (order-preserving).

    JSON keeps key order, so the decoded record's ``text()`` — and therefore
    every downstream feature — is bit-identical to the original's.  Exotic
    non-JSON values fall back to ``str``, matching how scoring reads them.
    """
    blob = json.dumps(
        dict(attributes), ensure_ascii=False, separators=(",", ":"), default=str
    ).encode("utf-8")
    return np.frombuffer(blob, dtype=np.uint8)


def decode_attributes(data: np.ndarray) -> dict:
    return json.loads(data.tobytes().decode("utf-8"))


def encode_text(text: str) -> np.ndarray:
    return np.frombuffer(text.encode("utf-8"), dtype=np.uint8)


def decode_text(data: np.ndarray) -> str:
    return data.tobytes().decode("utf-8")


class IndexStorage:
    """All row-aligned columns of a :class:`~repro.index.MatchIndex`.

    ============  =======================  =================================
    column        type                     purpose
    ============  =======================  =================================
    ``sig16``     uint16 ``(n, num_perm)`` Jaccard-agreement verification
    ``band_keys`` uint64 ``(n, bands)``    probe keys for self-join/rebuild
    ``shingles``  uint64 arena             exact verification; zero-length
                                           row ⇔ empty-text record
    ``ids``       uint8 arena              record ids (UTF-8)
    ``attrs``     uint8 arena              attribute maps (UTF-8 JSON)
    ``live``      bool, resident           tombstone mask (mutates in place)
    ``shard_ids`` uint32, resident         posting-shard of each row
    ============  =======================  =================================

    Matrix/arena bases may be read-only memmaps straight from an artifact;
    ``live`` and ``shard_ids`` are always RAM (the mask mutates, and both are
    tiny).  :meth:`resident_bytes` / :meth:`mapped_bytes` split the footprint
    accordingly for ``stats()``.
    """

    def __init__(self, num_perm: int, bands: int):
        self.num_perm = num_perm
        self.bands = bands
        self.sig16 = GrowableMatrix(np.uint16, num_perm)
        self.band_keys = GrowableMatrix(np.uint64, bands)
        self.shingles = Arena(np.uint64)
        self.ids = Arena(np.uint8)
        self.attrs = Arena(np.uint8)
        self.live = GrowableVector(bool)
        self.shard_ids = GrowableVector(np.uint32)

    @property
    def n_rows(self) -> int:
        return len(self.live)

    def append(
        self,
        record_ids: list[str],
        attr_blobs: list[np.ndarray],
        shingles: list[np.ndarray | None],
        sig16: np.ndarray,
        band_keys: np.ndarray,
        shard_ids: np.ndarray,
    ) -> None:
        empty = np.empty(0, dtype=np.uint64)
        self.sig16.append(sig16)
        self.band_keys.append(band_keys)
        self.shingles.append_batch([empty if h is None else h for h in shingles])
        self.ids.append_batch([encode_text(record_id) for record_id in record_ids])
        self.attrs.append_batch(attr_blobs)
        self.live.append(np.ones(len(record_ids), dtype=bool))
        self.shard_ids.append(shard_ids)

    def shingle_row(self, row: int) -> np.ndarray | None:
        """The row's shingle hashes, ``None`` for an empty-text record."""
        hashes = self.shingles.row(row)
        return None if len(hashes) == 0 else hashes

    def record_parts(self, row: int) -> tuple[str, dict]:
        return decode_text(self.ids.row(row)), decode_attributes(self.attrs.row(row))

    def record_id(self, row: int) -> str:
        return decode_text(self.ids.row(row))

    def compact(self, keep: np.ndarray) -> None:
        keep = np.asarray(keep, dtype=np.int64)
        self.sig16.compact(keep)
        self.band_keys.compact(keep)
        self.shingles.compact(keep)
        self.ids.compact(keep)
        self.attrs.compact(keep)
        self.live.compact(keep)
        self.shard_ids.compact(keep)

    def shrink(self) -> bool:
        """Reclaim spare tail capacity everywhere; True when anything shrank."""
        shrank = False
        for column in self._columns():
            shrank = column.shrink() or shrank
        return shrank

    def _columns(self):
        return (
            self.sig16,
            self.band_keys,
            self.shingles,
            self.ids,
            self.attrs,
            self.live,
            self.shard_ids,
        )

    @property
    def resident_bytes(self) -> int:
        return sum(column.resident_bytes for column in self._columns())

    @property
    def mapped_bytes(self) -> int:
        return sum(getattr(column, "mapped_bytes", 0) for column in self._columns())
