"""Hash-partitioned MinHash band postings: frozen CSR shards + RAM deltas.

The band index (band hash → rows whose signatures collide there) is
partitioned into ``IndexConfig.shards`` shards by a stable hash of the
record id, so every record's postings — across all bands — live in exactly
one shard.  Candidate generation takes the union of posting hits over all
shards and deduplicates with ``np.unique``; a union is partition-invariant,
which is why query results are **bit-identical for every shard count**
(property-tested in ``tests/test_index_stream_shards.py``).

Each shard stores its postings in two tiers:

* a **frozen CSR block** — three arrays ``(keys, rows, band_offsets)`` where
  band ``b``'s entries occupy ``keys[offsets[b]:offsets[b+1]]`` sorted by
  ``(key, row)``, so a lookup is one ``np.searchsorted`` per band.  The
  block is exactly what the artifact persists, may be a read-only
  ``np.memmap``, and its sort order is *canonical*: rebuilt from any
  add/batch/freeze history it comes out byte-identical.
* a **delta** — per-batch ``(rows, keys-matrix)`` chunks appended by
  ``add()``, looked up by vectorized equality scan.  When the delta
  outgrows the frozen block geometrically it is merged in (one
  ``np.lexsort``), keeping amortized build cost O(n log n).

Freezing publishes the merged CSR *before* clearing the delta, and
``lookup`` snapshots the delta *before* reading the frozen block — the
matching order, so a concurrent reader (the serving daemon snapshots under a
read lock while queries keep flowing) sees at worst duplicated hits —
removed again by the caller's ``np.unique`` — never missing ones.  Freezes
themselves serialize on a per-shard mutex, so two read-locked freeze paths
(a snapshot's save racing ``/stats``) cannot both merge the same delta.

For corpora big enough that scanning many shards in one process dominates,
:class:`ShardFanout` queries artifact-backed shards through a persistent
process pool (the runner's worker discipline): each worker memory-maps its
shards' CSR files once and answers lookups from the page cache.  The fan-out
merges candidates through the same union, so it stays bit-identical to the
in-process path.
"""

from __future__ import annotations

import threading
import zlib
from contextlib import nullcontext
from pathlib import Path

import numpy as np

__all__ = ["ShardFanout", "ShardPostings", "ShardedPostings", "shard_of"]

#: Reusable stand-in for an un-attached lookup timer (see ``lookup_timer``).
_NO_TIMER = nullcontext()

#: A shard's delta is merged into its frozen CSR once it holds more than
#: ``max(_FREEZE_MIN_ROWS, frozen_rows)`` rows — geometric growth, so a
#: streaming build pays O(n log n) total merge cost.
_FREEZE_MIN_ROWS = 8192


def shard_of(record_ids: list[str], shards: int) -> np.ndarray:
    """Stable shard assignment: CRC32 of the record id, mod ``shards``.

    Content-derived (not row-derived), so a record keeps its shard across
    compaction, save/load and re-adds — the property that lets an in-place
    save skip rewriting untouched shards.
    """
    if shards == 1:
        return np.zeros(len(record_ids), dtype=np.uint32)
    return np.fromiter(
        (zlib.crc32(record_id.encode("utf-8")) % shards for record_id in record_ids),
        dtype=np.uint32,
        count=len(record_ids),
    )


class ShardPostings:
    """One shard's band postings: frozen CSR + delta chunks."""

    def __init__(
        self,
        bands: int,
        keys: np.ndarray | None = None,
        rows: np.ndarray | None = None,
        offsets: np.ndarray | None = None,
    ):
        self.bands = bands
        fresh = keys is None
        if fresh:
            keys = np.empty(0, dtype=np.uint64)
            rows = np.empty(0, dtype=np.int64)
            offsets = np.zeros(bands + 1, dtype=np.int64)
        # One tuple so readers grab a consistent (keys, rows, offsets) set
        # even while a freeze swaps the block underneath them.
        self._frozen = (keys, rows, offsets)
        self._delta: list[tuple[np.ndarray, np.ndarray]] = []
        self._delta_rows = 0
        self.dirty = fresh
        # Serializes freeze(): mutation is single-writer by contract, but
        # freezes are also reached from *read-locked* paths (save/to_parts),
        # so two may race — the mutex makes the second a no-op instead of a
        # double merge that would duplicate every delta entry.
        self._freeze_lock = threading.Lock()

    # ------------------------------------------------------------- mutation
    def append(self, rows: np.ndarray, keys: np.ndarray) -> None:
        """Add records (their rows + full band-key matrix) to this shard."""
        if not len(rows):
            return
        self._delta.append(
            (
                np.asarray(rows, dtype=np.int64),
                np.ascontiguousarray(keys, dtype=np.uint64),
            )
        )
        self._delta_rows += len(rows)
        self.dirty = True
        frozen_rows = len(self._frozen[0]) // self.bands
        if self._delta_rows > max(_FREEZE_MIN_ROWS, frozen_rows):
            self.freeze()

    def freeze(self) -> None:
        """Merge the delta into the frozen CSR (canonical (key, row) order).

        Serialized on the per-shard mutex: concurrent freeze attempts (e.g.
        two read-locked saves) are idempotent — the loser observes the
        already-merged block and an empty delta, instead of merging the same
        delta twice and permanently duplicating its entries.
        """
        with self._freeze_lock:
            if not self._delta:
                return
            keys, rows, offsets = self._frozen
            bands = self.bands
            band_parts = [np.repeat(np.arange(bands, dtype=np.uint32), np.diff(offsets))]
            key_parts = [keys]
            row_parts = [rows]
            for chunk_rows, chunk_keys in self._delta:
                band_parts.append(np.tile(np.arange(bands, dtype=np.uint32), len(chunk_rows)))
                key_parts.append(chunk_keys.ravel())
                row_parts.append(np.repeat(chunk_rows, bands))
            all_bands = np.concatenate(band_parts)
            all_keys = np.concatenate(key_parts).astype(np.uint64, copy=False)
            all_rows = np.concatenate(row_parts).astype(np.int64, copy=False)
            # (band, row) pairs are unique, so this total order is unambiguous —
            # the frozen block is a pure function of the entry *set*, never of
            # the append/freeze history.
            order = np.lexsort((all_rows, all_keys, all_bands))
            sorted_bands = all_bands[order]
            merged = (
                np.ascontiguousarray(all_keys[order]),
                np.ascontiguousarray(all_rows[order]),
                np.searchsorted(sorted_bands, np.arange(bands + 1)).astype(np.int64),
            )
            # Publish the merged block first, then drop the delta: a concurrent
            # reader (which snapshots the delta before the frozen block) sees
            # duplicates at worst (deduplicated by np.unique), never a gap.
            self._frozen = merged
            self._delta = []
            self._delta_rows = 0

    @classmethod
    def build(cls, bands: int, rows: np.ndarray, keys: np.ndarray) -> "ShardPostings":
        """Fresh shard from scratch (compaction rebuild)."""
        shard = cls(bands)
        shard._delta = (
            [(np.asarray(rows, dtype=np.int64), np.ascontiguousarray(keys, dtype=np.uint64))]
            if len(rows)
            else []
        )
        shard._delta_rows = len(rows)
        shard.freeze()
        shard.dirty = True
        return shard

    # --------------------------------------------------------------- lookup
    def lookup(self, probe_keys: np.ndarray) -> list[np.ndarray]:
        """Posting hits (row arrays) for one probe's band keys, all bands.

        Lock-free: the delta is snapshotted *before* the frozen block is
        read.  Freeze publishes in the opposite order (merged block first,
        then clears the delta), so a freeze racing this read can only make
        delta rows show up twice — once from the snapshot, once from the
        merged block — never vanish; the caller's ``np.unique`` drops the
        duplicates.  (Reading the frozen block first would open a window
        where a completed freeze empties the delta while the reader still
        holds the *old* block, silently losing every delta row.)
        """
        delta = list(self._delta)
        keys, rows, offsets = self._frozen
        hits: list[np.ndarray] = []
        for band in range(self.bands):
            lo, hi = int(offsets[band]), int(offsets[band + 1])
            if hi > lo:
                segment = keys[lo:hi]
                left = int(np.searchsorted(segment, probe_keys[band], side="left"))
                right = int(np.searchsorted(segment, probe_keys[band], side="right"))
                if right > left:
                    hits.append(rows[lo + left : lo + right])
        for chunk_rows, chunk_keys in delta:
            mask = (chunk_keys == probe_keys[None, :]).any(axis=1)
            if mask.any():
                hits.append(chunk_rows[mask])
        return hits

    # ---------------------------------------------------------------- state
    def to_parts(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical persisted form; freezes any pending delta first."""
        self.freeze()
        keys, rows, offsets = self._frozen
        return (
            np.ascontiguousarray(keys, dtype=np.uint64),
            np.ascontiguousarray(rows, dtype=np.int64),
            np.ascontiguousarray(offsets, dtype=np.int64),
        )

    @property
    def n_entries(self) -> int:
        # Delta first, frozen second — same snapshot order as lookup(), so a
        # racing freeze can transiently overcount but never undercount.
        delta = list(self._delta)
        frozen = len(self._frozen[0])
        return frozen + sum(len(chunk_rows) for chunk_rows, _ in delta) * self.bands

    def posting_lists(self) -> int:
        """Distinct non-empty (band, key) buckets, frozen and delta combined.

        Read-only: counts pending delta keys without merging them, so stats
        paths (``GET /stats`` runs under the server's *read* lock) never
        mutate shared postings state.
        """
        delta = list(self._delta)
        keys, _, offsets = self._frozen
        distinct = 0
        for band in range(self.bands):
            lo, hi = int(offsets[band]), int(offsets[band + 1])
            segment = keys[lo:hi]
            if delta:
                band_keys = np.concatenate(
                    [segment] + [chunk_keys[:, band] for _, chunk_keys in delta]
                )
                distinct += len(np.unique(band_keys))
            elif hi > lo:
                distinct += 1 + int(np.count_nonzero(segment[1:] != segment[:-1]))
        return distinct

    @property
    def resident_bytes(self) -> int:
        keys, rows, offsets = self._frozen
        resident = sum(
            chunk_rows.nbytes + chunk_keys.nbytes for chunk_rows, chunk_keys in self._delta
        )
        if not isinstance(keys, np.memmap):
            resident += keys.nbytes + rows.nbytes + offsets.nbytes
        return resident

    @property
    def mapped_bytes(self) -> int:
        keys, rows, offsets = self._frozen
        if isinstance(keys, np.memmap):
            return keys.nbytes + rows.nbytes + offsets.nbytes
        return 0


class ShardedPostings:
    """The full band index as ``n_shards`` independent :class:`ShardPostings`."""

    def __init__(self, bands: int, n_shards: int, shards: list[ShardPostings] | None = None):
        self.bands = bands
        self.n_shards = n_shards
        self.shards = shards or [ShardPostings(bands) for _ in range(n_shards)]
        #: Optional injected histogram series (``.time()`` context manager)
        #: observing whole-probe lookup latency.  :class:`MatchIndex` attaches
        #: its registry's ``repro_index_lookup_seconds`` here; standalone
        #: postings (tests, compaction rebuilds before adoption) stay untimed.
        self.lookup_timer = None

    def add(self, rows: np.ndarray, keys: np.ndarray, shard_ids: np.ndarray) -> set[int]:
        """Route a batch's postings to their shards; returns touched shards."""
        touched: set[int] = set()
        if not len(rows):
            return touched
        if self.n_shards == 1:
            self.shards[0].append(rows, keys)
            return {0}
        for shard in np.unique(shard_ids).tolist():
            members = shard_ids == shard
            self.shards[shard].append(rows[members], keys[members])
            touched.add(int(shard))
        return touched

    def collision_rows(self, probe_keys: np.ndarray) -> np.ndarray:
        """All rows colliding with the probe, ascending and unique.

        The union over shards/bands is order-free, so any partitioning of
        the same records yields the same candidate set — the shard-count
        invariance the equivalence suites pin down.
        """
        timer = self.lookup_timer
        with timer.time() if timer is not None else _NO_TIMER:
            hits: list[np.ndarray] = []
            for shard in self.shards:
                hits.extend(shard.lookup(probe_keys))
            if not hits:
                return np.empty(0, dtype=np.int64)
            return np.unique(np.concatenate(hits))

    @classmethod
    def rebuild(
        cls, bands: int, n_shards: int, rows: np.ndarray, keys: np.ndarray, shard_ids: np.ndarray
    ) -> "ShardedPostings":
        """From-scratch build over surviving rows (compaction)."""
        built = []
        for shard in range(n_shards):
            members = shard_ids == shard
            built.append(ShardPostings.build(bands, rows[members], keys[members]))
        return cls(bands, n_shards, built)

    def freeze(self) -> None:
        for shard in self.shards:
            shard.freeze()

    @property
    def resident_bytes(self) -> int:
        return sum(shard.resident_bytes for shard in self.shards)

    @property
    def mapped_bytes(self) -> int:
        return sum(shard.mapped_bytes for shard in self.shards)


# ---------------------------------------------------------------- fan-out
#: Worker-side cache: (keys_path, rows_path, offsets_path) → mmap'd arrays.
#: Persistent across lookups, so each worker pays the (tiny) np.load header
#: parse once per shard and serves every later probe from the page cache.
_WORKER_SHARDS: dict[tuple[str, str, str], tuple] = {}


def _init_fanout_worker() -> None:
    global _WORKER_SHARDS
    _WORKER_SHARDS = {}


def _fanout_lookup(task: tuple) -> np.ndarray:
    """Worker: collision rows of one shard for one probe (concatenated)."""
    paths, bands, probe_keys = task
    cached = _WORKER_SHARDS.get(paths)
    if cached is None:
        keys_path, rows_path, offsets_path = paths
        cached = _WORKER_SHARDS[paths] = (
            np.load(keys_path, mmap_mode="r"),
            np.load(rows_path, mmap_mode="r"),
            np.asarray(np.load(offsets_path)),
        )
    keys, rows, offsets = cached
    hits: list[np.ndarray] = []
    for band in range(bands):
        lo, hi = int(offsets[band]), int(offsets[band + 1])
        if hi > lo:
            segment = keys[lo:hi]
            left = int(np.searchsorted(segment, probe_keys[band], side="left"))
            right = int(np.searchsorted(segment, probe_keys[band], side="right"))
            if right > left:
                hits.append(np.asarray(rows[lo + left : lo + right]))
    if not hits:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(hits)


class ShardFanout:
    """Parallel shard lookups over a persistent process pool.

    Only valid for a *pristine* artifact-backed index (no mutations since
    load): workers answer from the artifact's immutable CSR files, so any
    in-process delta would be invisible to them.  :class:`~repro.index.MatchIndex`
    drops the fan-out on the first mutation and falls back in-process.
    """

    def __init__(self, shard_paths: list[tuple[Path, Path, Path]], bands: int, jobs: int):
        self._paths = [tuple(str(p) for p in triple) for triple in shard_paths]
        self._bands = bands
        self.jobs = max(1, min(jobs, len(shard_paths)))
        self._pool = None
        #: Same injectable timing hook as :attr:`ShardedPostings.lookup_timer`
        #: — one observation per probe covering the full fan-out round trip.
        self.lookup_timer = None

    def _executor(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_init_fanout_worker
            )
        return self._pool

    def collision_rows(self, probe_keys: np.ndarray) -> np.ndarray:
        """Union of posting hits across all shards (unique, ascending)."""
        timer = self.lookup_timer
        with timer.time() if timer is not None else _NO_TIMER:
            tasks = [(paths, self._bands, probe_keys) for paths in self._paths]
            hits = [
                rows for rows in self._executor().map(_fanout_lookup, tasks) if len(rows)
            ]
            if not hits:
                return np.empty(0, dtype=np.int64)
            return np.unique(np.concatenate(hits))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
