"""Interpretability analysis: DNF formulae, atom counts and tree depths.

Section 6.3 compares rule-based models with tree ensembles on an
interpretability metric defined as the inverse of the number of *atoms* in the
model's DNF representation, where an atom is a similarity predicate with a
threshold applied to an attribute pair.  Trees are converted to DNF by walking
every root-to-leaf path that predicts the match class.
"""

from .dnf import Atom, Conjunction, DNFFormula
from .convert import forest_to_dnf, rule_learner_to_dnf, tree_to_dnf
from .metrics import interpretability_score

__all__ = [
    "Atom",
    "Conjunction",
    "DNFFormula",
    "tree_to_dnf",
    "forest_to_dnf",
    "rule_learner_to_dnf",
    "interpretability_score",
]
