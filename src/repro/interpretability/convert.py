"""Conversion of learned models into DNF formulae."""

from __future__ import annotations

from ..exceptions import ConfigurationError, NotFittedError
from ..features.boolean import BooleanFeatureDescriptor
from ..features.extractor import FeatureDescriptor
from ..learners.random_forest import RandomForest
from ..learners.rules import RuleLearner
from ..learners.tree import DecisionTree
from .dnf import Atom, Conjunction, DNFFormula


def _atom_from_continuous(descriptor: FeatureDescriptor, threshold: float, goes_left: bool) -> Atom:
    # A tree split "feature <= threshold" on a similarity feature becomes the
    # atom "similarity < threshold" on the left branch and "similarity >=
    # threshold" on the right branch (similarities are continuous in [0, 1]).
    operator = "<" if goes_left else ">="
    return Atom(
        attribute=descriptor.attribute,
        similarity=descriptor.similarity,
        threshold=float(threshold),
        operator=operator,
    )


def tree_to_dnf(tree: DecisionTree, descriptors: list[FeatureDescriptor]) -> DNFFormula:
    """Convert a decision tree's match-predicting paths into a DNF formula."""
    if not tree.is_fitted:
        raise NotFittedError("tree must be fitted before conversion")
    formula = DNFFormula()
    for path in tree.positive_paths():
        if not path:
            # A root-only tree predicting "match" everywhere has no atoms;
            # represent it as a trivially-true atom on the first descriptor.
            if not descriptors:
                raise ConfigurationError("descriptors must not be empty")
            formula.add(
                Conjunction(
                    (
                        Atom(
                            attribute=descriptors[0].attribute,
                            similarity=descriptors[0].similarity,
                            threshold=0.0,
                            operator=">=",
                        ),
                    )
                )
            )
            continue
        atoms = tuple(
            _atom_from_continuous(descriptors[feature], threshold, goes_left)
            for feature, threshold, goes_left in path
        )
        formula.add(Conjunction(atoms))
    return formula


def forest_to_dnf(forest: RandomForest, descriptors: list[FeatureDescriptor]) -> DNFFormula:
    """Union of the DNF formulae of every tree in the forest (Section 6.3)."""
    if not forest.is_fitted:
        raise NotFittedError("forest must be fitted before conversion")
    formula = DNFFormula()
    for tree in forest.trees:
        for conjunction in tree_to_dnf(tree, descriptors).conjunctions:
            formula.add(conjunction)
    return formula


def rule_learner_to_dnf(
    learner: RuleLearner, descriptors: list[BooleanFeatureDescriptor]
) -> DNFFormula:
    """Convert the rule learner's accepted conjunctive rules into a DNF formula."""
    if not learner.is_fitted:
        raise NotFittedError("rule learner must be fitted before conversion")
    formula = DNFFormula()
    for rule in learner.rules:
        atoms = tuple(
            Atom(
                attribute=descriptors[predicate].attribute,
                similarity=descriptors[predicate].similarity,
                threshold=descriptors[predicate].threshold,
                operator=">=",
            )
            for predicate in rule.predicates
        )
        formula.add(Conjunction(atoms))
    return formula
