"""DNF (disjunctive normal form) representation of matching models."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class Atom:
    """A Boolean predicate: a similarity function on an attribute pair vs a threshold.

    ``operator`` is ``">="`` for "similarity at least threshold" (the usual
    match-favouring direction) or ``"<"`` for the negated direction that
    appears when a decision-tree path goes below a split threshold.
    """

    attribute: str
    similarity: str
    threshold: float
    operator: str = ">="

    def __post_init__(self) -> None:
        if self.operator not in (">=", "<"):
            raise ConfigurationError("operator must be '>=' or '<'")

    def describe(self) -> str:
        return f"{self.similarity}({self.attribute}) {self.operator} {self.threshold:.2f}"


@dataclass(frozen=True)
class Conjunction:
    """A conjunction (AND) of atoms — one matching rule."""

    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ConfigurationError("a conjunction needs at least one atom")

    @property
    def n_atoms(self) -> int:
        return len(self.atoms)

    def describe(self) -> str:
        return " AND ".join(atom.describe() for atom in self.atoms)


@dataclass
class DNFFormula:
    """A disjunction (OR) of conjunctions — the full matching model."""

    conjunctions: list[Conjunction] = field(default_factory=list)

    def add(self, conjunction: Conjunction) -> None:
        self.conjunctions.append(conjunction)

    @property
    def n_rules(self) -> int:
        return len(self.conjunctions)

    @property
    def n_atoms(self) -> int:
        """Total atoms counted with repetition (the Section 6.3 convention)."""
        return sum(conjunction.n_atoms for conjunction in self.conjunctions)

    def describe(self) -> str:
        if not self.conjunctions:
            return "<empty DNF>"
        return "\n OR \n".join(conjunction.describe() for conjunction in self.conjunctions)
