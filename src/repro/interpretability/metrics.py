"""Interpretability metric of Singh et al. as used in Section 6.3."""

from __future__ import annotations

from ..exceptions import ConfigurationError
from .dnf import DNFFormula


def interpretability_score(formula: DNFFormula) -> float:
    """Interpretability is inversely proportional to the number of DNF atoms.

    An empty formula is maximally interpretable (score 1.0) by convention —
    there is nothing to read.
    """
    if formula is None:
        raise ConfigurationError("formula must not be None")
    if formula.n_atoms == 0:
        return 1.0
    return 1.0 / formula.n_atoms
