"""Versioned on-disk persistence for matching pipelines.

An artifact is a directory::

    <path>/
        manifest.json           # JSON: format/version, pipeline config, hashes, training summary
        model.pkl               # pickle: fitted predictor (learner parameters / ensemble members)
        index/state-<sha>.pkl   # optional content-addressed payload: MatchIndex state (repro.index)

``manifest.json`` is the source of truth: it names the format version, the
full pipeline configuration (with a content hash over it, reusing the
``TrialSpec`` hashing scheme), and the SHA-256 of every payload file, so a
reload can detect truncation, corruption and format drift before unpickling
anything.  The manifest is written last, so a crashed :func:`write_artifact`
never leaves a directory that passes :func:`read_manifest`.

Compatibility policy
--------------------
``format_version`` is a single integer, bumped on any change a version-1
reader cannot handle.  Readers accept exactly the versions listed in
:data:`SUPPORTED_VERSIONS` and raise :class:`~repro.exceptions.ArtifactError`
otherwise — failing loudly beats silently mis-scoring pairs with a
half-understood model.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import ArtifactError

#: Identifies the artifact family inside ``manifest.json``.
ARTIFACT_FORMAT = "repro-pipeline"

#: Current writer version; bump on any reader-incompatible change.
ARTIFACT_VERSION = 1

#: Versions this reader can load.
SUPPORTED_VERSIONS = frozenset({1})

MANIFEST_NAME = "manifest.json"
MODEL_NAME = "model.pkl"

#: Matches the content-addressed payload naming scheme
#: (``<stem>-<sha256[:12]><suffix>``) — the garbage collector below only
#: ever touches files of this shape, so ``manifest.json``, ``model.pkl``
#: and anything a user drops into the directory are never swept.
_CONTENT_ADDRESSED = re.compile(r"-[0-9a-f]{12}(\.[^.]+)?$")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _write_atomic(path: Path, data: bytes) -> None:
    """Write bytes via a temp file + rename, so a crash mid-write can never
    truncate an existing file (in-place artifact updates depend on this)."""
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_bytes(data)
    tmp.replace(path)  # atomic on POSIX


@dataclass(frozen=True)
class PayloadRef:
    """A payload whose bytes already live in a content-addressed file.

    :func:`write_artifact` accepts a ``PayloadRef`` wherever it accepts raw
    bytes: the manifest entry is rebuilt from the recorded digest and the
    file is only materialized (copied from ``source``) when the target
    content-addressed name does not exist yet.  Saving back to the directory
    a payload was loaded from therefore writes **nothing** for that payload —
    the mechanism behind dirty-only index saves, where an untouched shard or
    column never hits the disk again.
    """

    source: Path
    sha256: str
    nbytes: int


def write_artifact(
    path: str | os.PathLike,
    manifest: dict,
    model_state: object,
    payloads: dict[str, "bytes | PayloadRef"] | None = None,
) -> dict:
    """Persist a pipeline artifact and return the completed manifest.

    ``manifest`` is the caller-provided body (pipeline section, training
    summary); this function adds the format header and the model payload's
    content hash, writes ``model.pkl`` first and ``manifest.json`` last.

    ``payloads`` maps logical payload names (forward-slash separated, e.g.
    ``"index/state.pkl"``) to raw bytes.  Each payload is stored under a
    *content-addressed* file name (``index/state-<sha12>.pkl``) recorded in
    the manifest's ``payloads`` section together with its full SHA-256, so
    :func:`read_payload` resolves the name through the manifest and detects
    truncation or corruption.  New content lands in new files and the
    manifest swap is the commit point: a crash mid-save leaves either the
    old or the new artifact loadable, never a torn one.  Version-1 readers
    ignore the section entirely — a payload-bearing artifact still loads as
    a plain pipeline; sections that *interpret* a payload (e.g. ``index``)
    carry their own format version and gate their own readers.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)

    # The manifest already at this path (if any): its payload files become
    # stale after the overwrite and are removed post-commit, and an unchanged
    # model payload is detected so in-place updates skip rewriting it.
    previous: dict = {}
    manifest_path = directory / MANIFEST_NAME
    if manifest_path.exists():
        try:
            previous = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            previous = {}
    previous_payload_files = {
        entry.get("file", name)
        for name, entry in (previous.get("payloads") or {}).items()
    }

    model_bytes = pickle.dumps(model_state, protocol=pickle.HIGHEST_PROTOCOL)
    model_sha = _sha256(model_bytes)
    model_path = directory / MODEL_NAME
    # In-place updates (e.g. `repro index add`) keep the model unchanged:
    # skip the rewrite, saving O(model) I/O and keeping the old artifact
    # valid right up to the atomic manifest swap below.
    if not (model_path.exists() and (previous.get("model") or {}).get("sha256") == model_sha):
        _write_atomic(model_path, model_bytes)

    payload_section = {}
    for name, data in sorted((payloads or {}).items()):
        relative = Path(name)
        if relative.is_absolute() or ".." in relative.parts:
            raise ArtifactError(f"payload name {name!r} must be a relative path inside the artifact")
        # Content-addressed file name: new content lands in a new file, so
        # the previous manifest keeps referencing intact bytes until the
        # manifest swap commits the update — a crash anywhere in between
        # leaves a loadable artifact (old or new, never torn).
        is_ref = isinstance(data, PayloadRef)
        digest = data.sha256 if is_ref else _sha256(data)
        nbytes = data.nbytes if is_ref else len(data)
        stored = str(relative.with_name(f"{relative.stem}-{digest[:12]}{relative.suffix}"))
        target = directory / stored
        target.parent.mkdir(parents=True, exist_ok=True)
        if not target.exists():
            if is_ref:
                # Clean payload saved to a *new* directory: copy the bytes
                # from the referenced file.  (An in-place save hits the
                # target.exists() fast path above and writes nothing.)
                source = Path(data.source)
                if not source.exists():
                    raise ArtifactError(
                        f"payload {name!r} references missing file {str(source)!r}"
                    )
                _write_atomic(target, source.read_bytes())
            else:
                _write_atomic(target, data)
        payload_section[name] = {
            "file": stored,
            "sha256": digest,
            "bytes": nbytes,
        }

    completed = {
        "format": ARTIFACT_FORMAT,
        "format_version": ARTIFACT_VERSION,
        "model": {
            "file": MODEL_NAME,
            "sha256": model_sha,
            "bytes": len(model_bytes),
        },
        **({"payloads": payload_section} if payload_section else {}),
        **manifest,
    }
    _write_atomic(
        manifest_path,
        (json.dumps(completed, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )

    # Post-commit garbage collection: with the manifest swapped, any
    # content-addressed payload file it does not reference is unreachable —
    # superseded payloads from this save, *and* leftovers of saves that
    # crashed between writing payloads and swapping the manifest (which the
    # old previous-manifest diff could never reclaim, letting a long-running
    # snapshotting server accumulate orphans).  Sweep every directory that
    # holds (or held) payload files and delete the unreferenced ones.
    written = {entry["file"] for entry in payload_section.values()}
    swept: set[Path] = set()
    for stored in written | previous_payload_files:
        relative = Path(stored)
        if relative.is_absolute() or ".." in relative.parts:
            continue  # never follow a corrupt manifest outside the artifact
        parent = (directory / relative).parent
        if parent in swept:
            continue
        swept.add(parent)
        if not parent.is_dir():
            continue
        for candidate in parent.iterdir():
            if not candidate.is_file() or not _CONTENT_ADDRESSED.search(candidate.name):
                continue
            if str(candidate.relative_to(directory)) not in written:
                candidate.unlink(missing_ok=True)
    return completed


def read_manifest(path: str | os.PathLike) -> dict:
    """Load and validate ``manifest.json`` (existence, format, version)."""
    directory = Path(path)
    manifest_path = directory / MANIFEST_NAME
    if not directory.exists():
        raise ArtifactError(f"no pipeline artifact at {str(directory)!r}")
    if not manifest_path.exists():
        raise ArtifactError(
            f"{str(directory)!r} is not a pipeline artifact (missing {MANIFEST_NAME})"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"corrupt manifest in {str(directory)!r}: {exc}") from exc
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"{str(directory)!r} holds format {manifest.get('format')!r}, "
            f"expected {ARTIFACT_FORMAT!r}"
        )
    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ArtifactError(
            f"artifact format version {version!r} is not supported "
            f"(supported: {sorted(SUPPORTED_VERSIONS)}); "
            f"re-train the pipeline or upgrade repro"
        )
    return manifest


def read_payload(path: str | os.PathLike, name: str) -> bytes:
    """Load one named payload file, verifying its manifest content hash.

    Raises :class:`~repro.exceptions.ArtifactError` when the artifact carries
    no such payload, the file is missing, or its bytes do not match the
    SHA-256 recorded in the manifest.
    """
    directory = Path(path)
    manifest = read_manifest(directory)
    entry = (manifest.get("payloads") or {}).get(name)
    if entry is None:
        raise ArtifactError(f"artifact {str(directory)!r} carries no payload {name!r}")
    payload_path = directory / entry.get("file", name)
    if not payload_path.exists():
        raise ArtifactError(f"artifact {str(directory)!r} is missing payload file {name!r}")
    data = payload_path.read_bytes()
    expected = entry.get("sha256")
    if expected and _sha256(data) != expected:
        raise ArtifactError(
            f"artifact {str(directory)!r}: payload {name!r} does not match its "
            f"manifest hash (truncated or corrupted write?)"
        )
    return data


def read_payload_path(
    path: str | os.PathLike, name: str, manifest: dict | None = None
) -> tuple[Path, dict]:
    """Resolve one named payload to ``(file path, manifest entry)``, O(1).

    The cheap-verification complement of :func:`read_payload` for payloads
    that are *memory-mapped* rather than read: the file's byte count is
    checked against the manifest (catching truncation without touching the
    contents), while the full SHA-256 check is left to callers that actually
    read the bytes.  Raises :class:`~repro.exceptions.ArtifactError` for a
    missing payload entry, a missing file, or a size mismatch.  Pass an
    already-loaded ``manifest`` to skip re-reading it per payload.
    """
    directory = Path(path)
    if manifest is None:
        manifest = read_manifest(directory)
    entry = (manifest.get("payloads") or {}).get(name)
    if entry is None:
        raise ArtifactError(f"artifact {str(directory)!r} carries no payload {name!r}")
    payload_path = directory / entry.get("file", name)
    if not payload_path.exists():
        raise ArtifactError(f"artifact {str(directory)!r} is missing payload file {name!r}")
    expected = entry.get("bytes")
    if expected is not None and payload_path.stat().st_size != expected:
        raise ArtifactError(
            f"artifact {str(directory)!r}: payload {name!r} does not match its "
            f"manifest byte count (truncated or corrupted write?)"
        )
    return payload_path, entry


def read_artifact(path: str | os.PathLike) -> tuple[dict, object]:
    """Load ``(manifest, model_state)``, verifying the model content hash."""
    directory = Path(path)
    manifest = read_manifest(directory)
    model_info = manifest.get("model") or {}
    model_path = directory / model_info.get("file", MODEL_NAME)
    if not model_path.exists():
        raise ArtifactError(f"artifact {str(directory)!r} is missing {model_path.name!r}")
    model_bytes = model_path.read_bytes()
    expected = model_info.get("sha256")
    if expected and _sha256(model_bytes) != expected:
        raise ArtifactError(
            f"artifact {str(directory)!r}: {model_path.name!r} does not match its "
            f"manifest hash (truncated or corrupted write?)"
        )
    try:
        model_state = pickle.loads(model_bytes)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise ArtifactError(f"artifact {str(directory)!r}: cannot unpickle model: {exc}") from exc
    return manifest, model_state
