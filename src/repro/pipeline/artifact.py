"""Versioned on-disk persistence for matching pipelines.

An artifact is a directory::

    <path>/
        manifest.json   # JSON: format/version, pipeline config, hashes, training summary
        model.pkl       # pickle: fitted predictor (learner parameters / ensemble members)

``manifest.json`` is the source of truth: it names the format version, the
full pipeline configuration (with a content hash over it, reusing the
``TrialSpec`` hashing scheme), and the SHA-256 of every payload file, so a
reload can detect truncation, corruption and format drift before unpickling
anything.  The manifest is written last, so a crashed :func:`write_artifact`
never leaves a directory that passes :func:`read_manifest`.

Compatibility policy
--------------------
``format_version`` is a single integer, bumped on any change a version-1
reader cannot handle.  Readers accept exactly the versions listed in
:data:`SUPPORTED_VERSIONS` and raise :class:`~repro.exceptions.ArtifactError`
otherwise — failing loudly beats silently mis-scoring pairs with a
half-understood model.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

from ..exceptions import ArtifactError

#: Identifies the artifact family inside ``manifest.json``.
ARTIFACT_FORMAT = "repro-pipeline"

#: Current writer version; bump on any reader-incompatible change.
ARTIFACT_VERSION = 1

#: Versions this reader can load.
SUPPORTED_VERSIONS = frozenset({1})

MANIFEST_NAME = "manifest.json"
MODEL_NAME = "model.pkl"


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def write_artifact(path: str | os.PathLike, manifest: dict, model_state: object) -> dict:
    """Persist a pipeline artifact and return the completed manifest.

    ``manifest`` is the caller-provided body (pipeline section, training
    summary); this function adds the format header and the model payload's
    content hash, writes ``model.pkl`` first and ``manifest.json`` last.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)

    model_bytes = pickle.dumps(model_state, protocol=pickle.HIGHEST_PROTOCOL)
    (directory / MODEL_NAME).write_bytes(model_bytes)

    completed = {
        "format": ARTIFACT_FORMAT,
        "format_version": ARTIFACT_VERSION,
        "model": {
            "file": MODEL_NAME,
            "sha256": _sha256(model_bytes),
            "bytes": len(model_bytes),
        },
        **manifest,
    }
    manifest_path = directory / MANIFEST_NAME
    tmp = manifest_path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(completed, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    tmp.replace(manifest_path)  # atomic on POSIX
    return completed


def read_manifest(path: str | os.PathLike) -> dict:
    """Load and validate ``manifest.json`` (existence, format, version)."""
    directory = Path(path)
    manifest_path = directory / MANIFEST_NAME
    if not directory.exists():
        raise ArtifactError(f"no pipeline artifact at {str(directory)!r}")
    if not manifest_path.exists():
        raise ArtifactError(
            f"{str(directory)!r} is not a pipeline artifact (missing {MANIFEST_NAME})"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"corrupt manifest in {str(directory)!r}: {exc}") from exc
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"{str(directory)!r} holds format {manifest.get('format')!r}, "
            f"expected {ARTIFACT_FORMAT!r}"
        )
    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ArtifactError(
            f"artifact format version {version!r} is not supported "
            f"(supported: {sorted(SUPPORTED_VERSIONS)}); "
            f"re-train the pipeline or upgrade repro"
        )
    return manifest


def read_artifact(path: str | os.PathLike) -> tuple[dict, object]:
    """Load ``(manifest, model_state)``, verifying the model content hash."""
    directory = Path(path)
    manifest = read_manifest(directory)
    model_info = manifest.get("model") or {}
    model_path = directory / model_info.get("file", MODEL_NAME)
    if not model_path.exists():
        raise ArtifactError(f"artifact {str(directory)!r} is missing {model_path.name!r}")
    model_bytes = model_path.read_bytes()
    expected = model_info.get("sha256")
    if expected and _sha256(model_bytes) != expected:
        raise ArtifactError(
            f"artifact {str(directory)!r}: {model_path.name!r} does not match its "
            f"manifest hash (truncated or corrupted write?)"
        )
    try:
        model_state = pickle.loads(model_bytes)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise ArtifactError(f"artifact {str(directory)!r}: cannot unpickle model: {exc}") from exc
    return manifest, model_state
