"""End-to-end matching pipelines: fit → save/load → batch inference.

This package turns the reproduction harness into a usable matcher: a
:class:`MatchingPipeline` composes blocker, feature extractor and an
AL-trained learner (or active ensemble) behind ``fit`` / ``save`` / ``load``
/ ``match``, with a versioned on-disk artifact format
(:mod:`repro.pipeline.artifact`) guaranteeing that a pipeline trained once
reproduces bit-identical predictions after reload, across processes and for
any ``jobs`` / ``chunk_size`` setting.  See ``docs/pipeline.md``.
"""

from .artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    SUPPORTED_VERSIONS,
    read_artifact,
    read_manifest,
    write_artifact,
)
from .matching import (
    FALLBACK_BLOCKING_THRESHOLD,
    EnsemblePredictor,
    MatchingPipeline,
    MatchScore,
    load_pipeline,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "SUPPORTED_VERSIONS",
    "FALLBACK_BLOCKING_THRESHOLD",
    "EnsemblePredictor",
    "MatchingPipeline",
    "MatchScore",
    "load_pipeline",
    "read_artifact",
    "read_manifest",
    "write_artifact",
]
