"""End-to-end matching pipelines: train once, persist, score unseen pairs.

A :class:`MatchingPipeline` composes the three stages every experiment in
this repository already exercises — blocker → feature extractor → AL-trained
learner (or active ensemble) — behind a serving-shaped API:

* :meth:`MatchingPipeline.fit` trains the configured learner/selector
  combination by active learning on a catalog dataset (reusing the harness
  preparation cache) or on any ready-made :class:`~repro.datasets.EMDataset`.
* :meth:`MatchingPipeline.save` / :meth:`MatchingPipeline.load` persist the
  fitted pipeline as a versioned on-disk artifact (see
  :mod:`repro.pipeline.artifact`).
* :meth:`MatchingPipeline.match` blocks and scores two record collections in
  chunks, optionally across worker processes.  Scores are **bit-identical**
  for any ``jobs`` / ``chunk_size`` setting and across save/load cycles:
  blocking produces candidates in a deterministic order, feature extraction
  and prediction are row-wise deterministic, and chunking only partitions
  rows.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Mapping

import numpy as np

from ..core import ActiveEnsemble, ActiveEnsembleLoop, ActiveLearningLoop, ActiveLearningRun
from ..core.base import Learner
from ..core.config import BlockingConfig, PipelineConfig
from ..datasets.base import CandidatePair, EMDataset, Record, Table
from ..exceptions import ConfigurationError, NotFittedError
from ..telemetry import span
from .artifact import read_artifact, write_artifact

#: Jaccard threshold used when a pipeline is fitted on a plain
#: :class:`EMDataset` (no catalog spec to consult) and the config does not
#: name one.  Catalog datasets resolve to their spec threshold instead.
FALLBACK_BLOCKING_THRESHOLD = 0.1


def coerce_record(obj, index: int = 0) -> Record:
    """Interpret a :class:`Record` or a plain mapping as a :class:`Record`.

    Mappings may carry ``record_id`` (or ``id``) and either an ``attributes``
    sub-mapping or attribute values inline; missing/None values become empty
    strings.  Shared by :meth:`MatchingPipeline.match` and
    :class:`repro.index.MatchIndex`, so the batch and incremental paths
    interpret user records identically.
    """
    if isinstance(obj, Record):
        return obj
    if isinstance(obj, Mapping):
        data = dict(obj)
        attributes = data.pop("attributes", None)
        record_id = data.pop("record_id", None)
        if record_id is None:
            record_id = data.pop("id", None)
        if attributes is None:
            attributes = data
        if record_id is None:
            record_id = index
        return Record(
            record_id=str(record_id),
            attributes={
                str(key): "" if value is None else str(value)
                for key, value in attributes.items()
            },
        )
    raise ConfigurationError(
        f"cannot interpret {type(obj).__name__} as a record; "
        f"pass Record objects or mappings"
    )


@dataclass(frozen=True)
class MatchScore:
    """One scored candidate pair produced by :meth:`MatchingPipeline.match`.

    ``score`` is the model's match probability (for ensembles: the member
    vote fraction) and ``is_match`` the hard prediction.  For active
    ensembles the prediction is the *union* of member votes, so ``is_match``
    can be True at low vote fractions — consumers thresholding on ``score``
    should document their own cutoff.
    """

    left_id: str
    right_id: str
    score: float
    is_match: bool

    def to_dict(self) -> dict:
        return {
            "left_id": self.left_id,
            "right_id": self.right_id,
            "score": float(self.score),
            "is_match": bool(self.is_match),
        }


class EnsemblePredictor:
    """Picklable final model of an active-ensemble run.

    Wraps the frozen :class:`ActiveEnsemble` members plus the candidate
    classifier at termination — exactly the model the loop's own evaluation
    used (``predict_with_candidate``).
    """

    name = "active_ensemble"

    def __init__(self, ensemble: ActiveEnsemble, candidate: Learner | None):
        self.ensemble = ensemble
        self.candidate = candidate

    @property
    def _voters(self) -> list[Learner]:
        voters = list(self.ensemble.members)
        # When the loop terminates on the iteration a candidate is accepted,
        # the terminal candidate *is* the last member — don't let it vote
        # twice (union predictions are idempotent, vote fractions are not).
        if (
            self.candidate is not None
            and self.candidate.is_fitted
            and all(self.candidate is not member for member in voters)
        ):
            voters.append(self.candidate)
        return voters

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.ensemble.predict_with_candidate(features, self.candidate)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        voters = self._voters
        if not voters:
            return np.zeros(len(features), dtype=float)
        votes = np.zeros(len(features), dtype=float)
        for voter in voters:
            votes += voter.predict(features).astype(float)
        return votes / len(voters)


class MatchingPipeline:
    """Blocker → feature extractor → AL-trained matcher, as one object.

    Parameters
    ----------
    config:
        Training and inference configuration; defaults to the paper's best
        combination (``Trees(20)``) with Section 6 loop defaults.
    """

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        self._predictor: Learner | EnsemblePredictor | None = None
        self.feature_kind: str | None = None
        self.matched_columns: list[str] | None = None
        #: Cascade counters of the most recent :meth:`match` call
        #: (``None`` before any call); see docs/scoring.md.
        self.last_match_stats: dict | None = None
        #: The blocking config actually applied (thresholds resolved against
        #: the training dataset's spec), persisted so inference blocks
        #: identically after reload.
        self.resolved_blocking: BlockingConfig | None = None
        #: Training provenance: dataset name, pool statistics and the
        #: timing-stripped run summary.
        self.training: dict | None = None

    # ------------------------------------------------------------------- fit
    @property
    def is_fitted(self) -> bool:
        return self._predictor is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError("MatchingPipeline has not been fitted (or loaded) yet")

    def _resolve_blocking(self, default_threshold: float) -> BlockingConfig:
        blocking = self.config.blocking or BlockingConfig(method="jaccard")
        if blocking.method == "jaccard" and blocking.threshold is None:
            blocking = replace(blocking, threshold=default_threshold)
        return blocking

    def fit(self, dataset: str | EMDataset) -> ActiveLearningRun:
        """Train the pipeline by active learning and return the trajectory.

        ``dataset`` is either a catalog name (prepared through the harness'
        memoized — and optionally disk-backed — preparation cache, so
        repeated fits share blocking and feature-extraction work) or a
        ready-made :class:`EMDataset` with ground-truth matches for the
        training Oracle.
        """
        from ..datasets import get_dataset_spec
        from ..harness.builders import build_combination, make_oracle, prepare_for_combination
        from ..harness.preparation import prepare_pool_from_pairs
        from ..runner.runner import strip_timing

        combination = build_combination(self.config.combination)
        if isinstance(dataset, str):
            default_threshold = get_dataset_spec(dataset).blocking_threshold
            prepared = prepare_for_combination(
                dataset,
                combination,
                scale=self.config.scale,
                seed=self.config.dataset_seed,
                blocking=self.config.blocking,
            )
        else:
            from ..harness.preparation import build_blocker

            default_threshold = FALLBACK_BLOCKING_THRESHOLD
            blocker = build_blocker(self.config.blocking, default_threshold)
            blocking_result = blocker.block(dataset)
            prepared = prepare_pool_from_pairs(
                dataset, blocking_result.pairs, combination.feature_kind
            )

        oracle = make_oracle(
            prepared.pool, noise=self.config.noise, seed=self.config.oracle_seed
        )
        if combination.is_ensemble:
            loop = ActiveEnsembleLoop(
                learner_factory=combination.learner_factory,
                selector=combination.selector_factory(),
                pool=prepared.pool,
                oracle=oracle,
                config=self.config.config,
                dataset_name=prepared.name,
            )
            run = loop.run()
            predictor: Learner | EnsemblePredictor = EnsemblePredictor(
                loop.ensemble, loop.final_candidate
            )
        else:
            loop = ActiveLearningLoop(
                learner=combination.learner_factory(),
                selector=combination.selector_factory(),
                pool=prepared.pool,
                oracle=oracle,
                config=self.config.config,
                dataset_name=prepared.name,
            )
            run = loop.run()
            predictor = loop.learner
        run.metadata["combination"] = combination.name

        self._predictor = predictor
        self.feature_kind = combination.feature_kind
        self.matched_columns = list(prepared.dataset.matched_columns)
        self.resolved_blocking = self._resolve_blocking(default_threshold)
        self.training = {
            "dataset": prepared.name,
            "n_pairs": int(prepared.n_pairs),
            "class_skew": round(float(prepared.class_skew), 6),
            "summary": strip_timing(run.summary()),
        }
        return run

    # ----------------------------------------------------------------- match
    def _coerce_record(self, obj, index: int) -> Record:
        return coerce_record(obj, index)

    def _as_table(self, side: str, records) -> Table:
        if isinstance(records, Table):
            return records
        if isinstance(records, EMDataset):
            raise ConfigurationError(
                "pass the dataset's tables (dataset.left, dataset.right), not the dataset"
            )
        return Table(
            name=side,
            schema=self.matched_columns,
            records=[self._coerce_record(obj, i) for i, obj in enumerate(records)],
        )

    def candidates(self, records_a, records_b) -> list[CandidatePair]:
        """Blocked (unlabeled) candidate pairs for two record collections.

        Deterministic order — the contract the chunked/parallel scorer relies
        on for bit-identical output.
        """
        self._require_fitted()
        from ..harness.preparation import build_blocker

        with span("match.block") as block_span:
            left = self._as_table("left", records_a)
            right = self._as_table("right", records_b)
            blocker = build_blocker(self.resolved_blocking, FALLBACK_BLOCKING_THRESHOLD)
            triples = blocker.candidate_pairs(left, right)
            block_span.annotate(candidates=len(triples))
        return [CandidatePair(left_rec, right_rec) for left_rec, right_rec, _ in triples]

    def match(
        self,
        records_a,
        records_b,
        jobs: int = 1,
        chunk_size: int | None = None,
        min_score: float | None = None,
    ) -> list[MatchScore]:
        """Block and score two record collections, returning scored pairs.

        Parameters
        ----------
        records_a, records_b:
            The two sides to match: :class:`Table` objects, lists of
            :class:`Record`, or lists of plain mappings (``record_id``/``id``
            plus attribute values).
        jobs:
            Worker processes for scoring.  ``1`` scores in-process; any value
            yields bit-identical scores (chunks are scored independently and
            reassembled in candidate order).
        chunk_size:
            Candidate pairs per scoring chunk (default: the config's
            ``chunk_size``).  Bounds peak memory; never changes scores.
        min_score:
            When given, only pairs scoring at least this are returned —
            exactly ``[m for m in match(...) if m.score >= min_score]``, but
            the score cascade (``config.cascade``, see docs/scoring.md) may
            use the floor to prune candidates before their expensive feature
            columns are ever computed.  Cascade mode ``"on"`` additionally
            drops candidates the learner provably rejects even without a
            floor; accepted pairs and survivor scores are bit-identical to
            the uncascaded path in every mode.

        Per-candidate cascade counters for the call are available afterwards
        via :attr:`last_match_stats`.
        """
        self._require_fitted()
        if jobs < 1:
            raise ConfigurationError("jobs must be at least 1")
        chunk_size = self.config.chunk_size if chunk_size is None else chunk_size
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be at least 1")

        pairs = self.candidates(records_a, records_b)
        if not pairs:
            self.last_match_stats = {
                "mode": self.config.cascade.mode,
                "candidates_seen": 0,
                "pruned_at_bound": 0,
                "fully_scored": 0,
            }
            return []
        chunks = [pairs[start : start + chunk_size] for start in range(0, len(pairs), chunk_size)]

        with span("match.score") as score_span:
            if jobs == 1 or len(chunks) == 1:
                from ..harness.preparation import make_extractor
                from ..scoring import CascadeScorer

                extractor = make_extractor(self.matched_columns, self.feature_kind)
                scorer = CascadeScorer(self._predictor, extractor, self.config.cascade)
                scored = [
                    scorer.score_chunk(chunk, floors=min_score) for chunk in chunks
                ]
                self.last_match_stats = scorer.stats()
            else:
                state = pickle.dumps(
                    self._inference_state(min_score), protocol=pickle.HIGHEST_PROTOCOL
                )
                with ProcessPoolExecutor(
                    max_workers=min(jobs, len(chunks)),
                    initializer=_init_match_worker,
                    initargs=(state,),
                ) as pool:
                    scored = list(pool.map(_match_chunk_worker, chunks))
                self.last_match_stats = {
                    "mode": self.config.cascade.mode,
                    "candidates_seen": len(pairs),
                    "pruned_at_bound": len(pairs)
                    - sum(len(kept) for kept, _, _ in scored),
                    "fully_scored": sum(len(kept) for kept, _, _ in scored),
                }
            score_span.annotate(chunks=len(chunks), jobs=jobs)

        results: list[MatchScore] = []
        for chunk, (kept, scores, predictions) in zip(chunks, scored):
            for row, score, prediction in zip(kept, scores, predictions):
                if min_score is not None and score < min_score:
                    continue
                pair = chunk[int(row)]
                results.append(
                    MatchScore(
                        left_id=pair.left.record_id,
                        right_id=pair.right.record_id,
                        score=float(score),
                        is_match=bool(prediction),
                    )
                )
        return results

    def _inference_state(self, min_score: float | None = None) -> dict:
        """Everything a worker process needs to score chunks identically."""
        return {
            "predictor": self._predictor,
            "matched_columns": self.matched_columns,
            "feature_kind": self.feature_kind,
            "cascade": self.config.cascade,
            "min_score": min_score,
        }

    # ----------------------------------------------------------- persistence
    def _manifest_body(self) -> dict:
        """The artifact manifest body describing this fitted pipeline.

        Shared by :meth:`save` and by index artifacts
        (:meth:`repro.index.MatchIndex.save`), which persist the same
        pipeline description plus an ``index`` payload section.
        """
        self._require_fitted()
        from .. import __version__
        from ..harness.preparation import make_extractor
        from ..runner.spec import content_hash

        pipeline_section = {
            "combination": self.config.combination,
            "feature_kind": self.feature_kind,
            "matched_columns": list(self.matched_columns),
            "blocking": self.resolved_blocking.to_dict(),
            "config": self.config.to_dict(),
        }
        extractor = make_extractor(self.matched_columns, self.feature_kind)
        return {
            "repro_version": __version__,
            "pipeline": pipeline_section,
            "config_hash": content_hash(pipeline_section),
            "features": {
                "kind": self.feature_kind,
                "dim": extractor.dim,
                "names": extractor.feature_names(),
            },
            "training": self.training,
        }

    def save(self, path) -> dict:
        """Persist the fitted pipeline as a versioned artifact directory.

        Returns the completed manifest.  The manifest carries no timestamps
        or wall-clock fields, so saving the same fitted pipeline twice
        produces byte-identical manifests.
        """
        return write_artifact(path, self._manifest_body(), self._inference_state())

    @classmethod
    def load(cls, path) -> "MatchingPipeline":
        """Reload a persisted pipeline; raises :class:`ArtifactError` on
        missing/corrupt artifacts or unsupported format versions."""
        from ..exceptions import ArtifactError
        from ..runner.spec import content_hash

        manifest, state = read_artifact(path)
        section = manifest.get("pipeline") or {}
        expected = manifest.get("config_hash")
        if expected and content_hash(section) != expected:
            raise ArtifactError(
                f"artifact {str(path)!r}: pipeline section does not match its "
                f"config hash (manifest edited?)"
            )
        pipeline = cls(PipelineConfig.from_dict(section.get("config", {})))
        pipeline._predictor = state["predictor"]
        pipeline.feature_kind = section.get("feature_kind", state.get("feature_kind"))
        pipeline.matched_columns = list(section.get("matched_columns", state.get("matched_columns")))
        pipeline.resolved_blocking = BlockingConfig.from_dict(section["blocking"])
        pipeline.training = manifest.get("training")
        return pipeline


def load_pipeline(path) -> MatchingPipeline:
    """Convenience alias for :meth:`MatchingPipeline.load`."""
    return MatchingPipeline.load(path)


# --------------------------------------------------------- worker plumbing
def _score_pairs(
    predictor, extractor, chunk: list[CandidatePair]
) -> tuple[np.ndarray, np.ndarray]:
    """Score one chunk of candidate pairs: ``(probabilities, predictions)``.

    The single scoring contract shared by the in-process and worker paths —
    the jobs-independence guarantee relies on both using exactly this code.
    """
    from ..harness.preparation import extract_feature_matrix

    matrix = extract_feature_matrix(extractor, chunk)
    scores = np.asarray(predictor.predict_proba(matrix), dtype=float)
    predictions = np.asarray(predictor.predict(matrix), dtype=np.int64)
    return scores, predictions


#: Per-worker inference state, installed once by the pool initializer so the
#: (potentially large) predictor is deserialized once per process, not once
#: per chunk.
_WORKER: dict | None = None


def _init_match_worker(state_bytes: bytes) -> None:
    from ..harness.preparation import make_extractor
    from ..scoring import CascadeScorer

    global _WORKER
    state = pickle.loads(state_bytes)
    extractor = make_extractor(state["matched_columns"], state["feature_kind"])
    _WORKER = {
        "scorer": CascadeScorer(state["predictor"], extractor, state.get("cascade")),
        "min_score": state.get("min_score"),
    }


def _match_chunk_worker(
    chunk: list[CandidatePair],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    return _WORKER["scorer"].score_chunk(chunk, floors=_WORKER["min_score"])
