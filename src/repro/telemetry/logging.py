"""Structured logging for the serving daemon.

Thin layer over :mod:`logging`: ``get_logger()`` returns ordinary stdlib
loggers under the ``repro`` hierarchy, and :func:`configure` installs one
stream handler whose formatter is either human-readable text (UTC
timestamp, level, thread, logger, message, ``key=value`` context) or one
JSON object per line with the same fields — ``repro serve
--log-format json`` flips between them.  Request-scoped fields (request
id, endpoint, status, latency, generation) travel in a single ``context``
dict passed via ``extra``:

    log.info("request", context={"request_id": rid, "latency_ms": 4.2})

Keeping the transport stdlib means tests can capture records with
``caplog`` and applications embedding :class:`~repro.server.MatchServer`
can re-route the ``repro`` logger tree however they like.
"""

from __future__ import annotations

import io
import json
import logging
import sys
import threading
from datetime import datetime, timezone

__all__ = ["JsonFormatter", "TextFormatter", "configure", "get_logger"]

_ROOT_NAME = "repro"
_configure_lock = threading.Lock()
_handler: logging.Handler | None = None


def _utc_timestamp(record: logging.LogRecord) -> str:
    return (
        datetime.fromtimestamp(record.created, tz=timezone.utc)
        .isoformat(timespec="milliseconds")
        .replace("+00:00", "Z")
    )


def _record_context(record: logging.LogRecord) -> dict:
    context = getattr(record, "context", None)
    return context if isinstance(context, dict) else {}


class JsonFormatter(logging.Formatter):
    """One JSON object per line; context fields merge into the top level."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": _utc_timestamp(record),
            "level": record.levelname,
            "logger": record.name,
            "thread": record.threadName,
            "message": record.getMessage(),
        }
        for key, value in _record_context(record).items():
            if key not in payload:
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False, default=str)


class TextFormatter(logging.Formatter):
    """Human-readable: timestamp, level, thread, logger, message, k=v pairs."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            _utc_timestamp(record),
            f"{record.levelname:<7}",
            f"[{record.threadName}]",
            record.name,
            record.getMessage(),
        ]
        context = _record_context(record)
        if context:
            parts.append(" ".join(f"{key}={value}" for key, value in context.items()))
        line = " ".join(parts)
        if record.exc_info and record.exc_info[0] is not None:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


def configure(
    log_format: str = "text",
    level: int = logging.INFO,
    stream: io.TextIOBase | None = None,
) -> logging.Logger:
    """Install (or replace) the ``repro`` tree's stream handler.

    Idempotent: calling again swaps the handler, so ``repro serve`` can be
    restarted in-process (tests do) without duplicating output lines.
    """
    global _handler
    if log_format not in ("text", "json"):
        raise ValueError(f"log_format must be 'text' or 'json', got {log_format!r}")
    root = logging.getLogger(_ROOT_NAME)
    with _configure_lock:
        if _handler is not None:
            root.removeHandler(_handler)
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(JsonFormatter() if log_format == "json" else TextFormatter())
        root.addHandler(handler)
        root.setLevel(level)
        root.propagate = False
        _handler = handler
    return root


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
