"""Unified observability: metrics, request tracing, structured logging.

Three pieces, one package:

* :mod:`repro.telemetry.registry` — thread-safe :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms) and a Prometheus text
  renderer; the daemon's ``GET /metrics`` serves it directly.
* :mod:`repro.telemetry.tracing` — per-request span trees
  (``with span("query.block"): ...``) carried by a server-assigned
  request id and returned inline on ``POST /query {"trace": true}``.
* :mod:`repro.telemetry.logging` — structured text/JSON logging for the
  daemon (request id, generation, latency fields).

The enabled gate (``REPRO_TELEMETRY`` / :func:`set_enabled`) controls the
*timing* instrumentation only: histogram timers and clock reads become
no-ops when disabled, making the disabled overhead effectively zero.
Counters and gauges always count — they are the substrate behind
``MatchIndex.stats()`` and the daemon's ``/stats`` view, are plain locked
integer adds, and cost nothing measurable.  Tracing is opt-in per request
regardless of the gate: spans only materialise under an explicitly opened
root trace.
"""

from __future__ import annotations

import os
import threading

from .logging import JsonFormatter, TextFormatter, configure, get_logger
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from .tracing import Span, active_span, span, start_trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "Span",
    "TextFormatter",
    "active_span",
    "configure",
    "default_registry",
    "enabled",
    "get_logger",
    "render_prometheus",
    "set_enabled",
    "span",
    "start_trace",
]


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_TELEMETRY", "1").strip().lower()
    return value not in ("0", "false", "no", "off", "")


_enabled = _env_enabled()

_default_registry: MetricsRegistry | None = None
_default_lock = threading.Lock()


def enabled() -> bool:
    """Whether timing instrumentation (histogram timers, spans) is on."""
    return _enabled


def set_enabled(value: bool) -> bool:
    """Flip the timing-instrumentation gate; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    return previous


def default_registry() -> MetricsRegistry:
    """The process-global registry, for code without a natural owner.

    Components that *have* an owner (an index, a server) use per-instance
    registries so two in-process servers never mix metrics; this one backs
    ad-hoc scripts and the pipeline's module-level instrumentation.
    """
    global _default_registry
    if _default_registry is None:
        with _default_lock:
            if _default_registry is None:
                _default_registry = MetricsRegistry()
    return _default_registry
