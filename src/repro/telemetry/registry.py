"""Thread-safe metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a namespace of named metric *families*; a
family with label names fans out into one *series* per distinct label-value
combination (``requests.labels(endpoint="query")``), a family without label
names is its own single series.  The hot path is deliberately boring:

* **Lock striping** — the registry owns a small fixed array of locks and
  every series is pinned to one stripe by the hash of its identity, so two
  unrelated metrics almost never contend and no lock is ever allocated per
  observation.
* **Allocation-free observations** — ``inc`` / ``set`` / ``observe`` touch
  preallocated slots only.  Label children are created (and cached) on the
  first ``labels(...)`` call; instrumented code resolves its children once
  at setup and holds the series object.
* **Isolation by construction** — registries are cheap instances with no
  hidden global state; each :class:`~repro.index.MatchIndex` (and therefore
  each serving daemon) gets its own, so two servers in one process never
  mix counters.  A process-global default lives in
  :func:`repro.telemetry.default_registry` for code without a natural owner.

Rendering for scrapers lives in :func:`render_prometheus` — the text
exposition format (``GET /metrics`` on the daemon serves exactly this).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from time import perf_counter

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
]

#: Default histogram bucket upper bounds (seconds) — tuned for the serving
#: daemon's query latencies: sub-millisecond cache hits up to multi-second
#: cold scans, roughly geometric.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Lock stripes per registry.  Observations hash their series identity into
#: this array, so contention only happens between series that collide.
_N_STRIPES = 16


class _NoopTimer:
    """Shared do-nothing context manager: the disabled-telemetry timer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NOOP_TIMER = _NoopTimer()


class _Timer:
    """Times a ``with`` block into a histogram (seconds)."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram

    def __enter__(self):
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info):
        self._histogram.observe(perf_counter() - self._start)
        return False


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels_kv", "_lock", "_value")

    def __init__(self, name: str, labels_kv: tuple, lock: threading.Lock) -> None:
        self.name = name
        self.labels_kv = labels_kv
        self._lock = lock
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("name", "labels_kv", "_lock", "_value")

    def __init__(self, name: str, labels_kv: tuple, lock: threading.Lock) -> None:
        self.name = name
        self.labels_kv = labels_kv
        self._lock = lock
        self._value = 0

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount=1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self):
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram of observations (Prometheus semantics).

    Bucket bounds are fixed at construction; ``observe`` is one bisect plus
    three slot updates under the stripe lock — no allocation, no resizing.
    ``time()`` returns a context manager observing the block's wall time in
    seconds; when telemetry is disabled it returns a shared no-op (no clock
    calls at all — the "~0% disabled overhead" half of the contract).
    """

    kind = "histogram"
    __slots__ = ("name", "labels_kv", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        labels_kv: tuple,
        lock: threading.Lock,
        buckets: tuple = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty sequence")
        self.name = name
        self.labels_kv = labels_kv
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = lock
        self._counts = [0] * (len(self.buckets) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def time(self):
        """Context manager observing the block's duration in seconds."""
        from . import enabled

        if not enabled():
            return _NOOP_TIMER
        return _Timer(self)

    def snapshot(self) -> dict:
        """Consistent ``{"count", "sum", "buckets"}`` view (cumulative)."""
        with self._lock:
            counts = list(self._counts)
            total, running = self._sum, 0
        cumulative = []
        for count in counts[:-1]:
            running += count
            cumulative.append(running)
        return {"count": sum(counts), "sum": total, "buckets": cumulative}

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


class MetricFamily:
    """One named metric; with label names it fans out into child series."""

    __slots__ = ("name", "help", "kind", "labelnames", "_registry", "_children", "_kwargs")

    def __init__(self, registry, name, kind, help, labelnames, **kwargs):
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._children: dict[tuple, object] = {}
        self._kwargs = kwargs
        if not self.labelnames:
            self._children[()] = self._make(())

    def _make(self, label_values: tuple):
        cls = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}[self.kind]
        lock = self._registry._stripe(self.name, label_values)
        kv = tuple(zip(self.labelnames, label_values))
        return cls(self.name, kv, lock, **self._kwargs)

    def labels(self, *values, **kv):
        """The child series for one label-value combination (cached)."""
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            if set(kv) != set(self.labelnames):
                raise ValueError(
                    f"metric {self.name!r} takes labels {self.labelnames}, "
                    f"got {tuple(sorted(kv))}"
                )
            values = tuple(kv[name] for name in self.labelnames)
        values = tuple(str(value) for value in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {values}"
            )
        child = self._children.get(values)
        if child is None:
            with self._registry._families_lock:
                child = self._children.get(values)
                if child is None:
                    child = self._make(values)
                    self._children[values] = child
        return child

    def series(self) -> list:
        """All child series, label-sorted (deterministic render order)."""
        with self._registry._families_lock:
            return [self._children[key] for key in sorted(self._children)]

    # Unlabelled families proxy the single series so `registry.counter(n).inc()`
    # reads naturally without a labels(()) hop.
    def _only(self):
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} requires labels {self.labelnames}")
        return self._children[()]

    def inc(self, amount=1):
        self._only().inc(amount)

    def dec(self, amount=1):
        self._only().dec(amount)

    def set(self, value):
        self._only().set(value)

    def observe(self, value):
        self._only().observe(value)

    def time(self):
        return self._only().time()

    @property
    def value(self):
        return self._only().value

    @property
    def count(self):
        return self._only().count

    @property
    def sum(self):
        return self._only().sum

    def snapshot(self):
        return self._only().snapshot()


class MetricsRegistry:
    """A namespace of metrics with get-or-create registration.

    Registering the same name twice returns the existing family (so layered
    components can share counters through a common registry); re-registering
    under a different kind or label set is a bug and raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._families_lock = threading.Lock()
        self._stripes = [threading.Lock() for _ in range(_N_STRIPES)]

    def _stripe(self, name: str, label_values: tuple) -> threading.Lock:
        return self._stripes[hash((name, label_values)) % _N_STRIPES]

    def _register(self, name, kind, help, labelnames, **kwargs) -> MetricFamily:
        if not name or not all(c.isalnum() or c in "_:" for c in name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._families_lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(self, name, kind, help, labelnames, **kwargs)
                self._families[name] = family
                return family
        if family.kind != kind or family.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} "
                f"with labels {family.labelnames}"
            )
        return family

    def counter(self, name: str, help: str = "", labelnames=()) -> MetricFamily:
        return self._register(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> MetricFamily:
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets: tuple = DEFAULT_BUCKETS
    ) -> MetricFamily:
        return self._register(name, "histogram", help, labelnames, buckets=tuple(buckets))

    def collect(self) -> list[MetricFamily]:
        """Families sorted by name (the deterministic render order)."""
        with self._families_lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        with self._families_lock:
            return self._families.get(name)

    def value(self, name: str, **labels):
        """Convenience read for stats views: the series' current value."""
        family = self.get(name)
        if family is None:
            return 0
        child = family.labels(**labels) if labels else family._only()
        return child.value

    def label_values(self, name: str) -> dict:
        """``{label-value-tuple-or-string: value}`` over a family's series."""
        family = self.get(name)
        if family is None:
            return {}
        out = {}
        for child in family.series():
            values = tuple(value for _, value in child.labels_kv)
            key = values[0] if len(values) == 1 else values
            out[key] = child.value
        return out


# --------------------------------------------------------------- exposition
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_string(kv: tuple, extra: tuple = ()) -> str:
    parts = [f'{name}="{_escape_label(str(value))}"' for name, value in (*kv, *extra)]
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Families are name-sorted and series label-sorted, so two scrapes of an
    unchanged registry are byte-identical.  Histograms emit cumulative
    ``_bucket`` series (``+Inf`` included), ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for series in family.series():
            if family.kind == "histogram":
                snap = series.snapshot()
                running = 0
                for bound, cumulative in zip(series.buckets, snap["buckets"]):
                    running = cumulative
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_label_string(series.labels_kv, (('le', _format_value(bound)),))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{family.name}_bucket"
                    f"{_label_string(series.labels_kv, (('le', '+Inf'),))}"
                    f" {snap['count']}"
                )
                lines.append(
                    f"{family.name}_sum{_label_string(series.labels_kv)}"
                    f" {_format_value(snap['sum'])}"
                )
                lines.append(
                    f"{family.name}_count{_label_string(series.labels_kv)} {snap['count']}"
                )
            else:
                lines.append(
                    f"{family.name}{_label_string(series.labels_kv)}"
                    f" {_format_value(series.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""
