"""Span-based request tracing.

A *trace* is a per-request tree of timed spans: the server opens a root
span for the request, the index adds ``index.query`` with children for
blocking, candidate lookup and scoring, and the cascade adds per-stage
leaves.  Each span records wall time (``perf_counter``) and CPU time
(``thread_time``) in milliseconds; the finished tree serialises with
:meth:`Span.to_dict` and rides back inline on ``POST /query`` responses
when the caller asked for it (``{"trace": true}``).

The design constraint is that instrumented code never checks "am I being
traced" — it always writes ``with span("query.block"): ...``.  Outside an
active trace (the overwhelmingly common case), :func:`span` returns a
shared no-op singleton: no allocation, no clock reads, no contextvar
writes.  Propagation uses a :class:`contextvars.ContextVar`, so a trace
follows its request across the call stack but never leaks between the
daemon's worker threads.

Traced queries bypass the server's batcher — coalescing would attribute a
leader's work to follower requests — which is safe because batched and
unbatched queries are bit-identical by contract.
"""

from __future__ import annotations

from contextvars import ContextVar
from time import perf_counter, thread_time

__all__ = ["Span", "active_span", "span", "start_trace"]

_current_span: ContextVar["Span | None"] = ContextVar("repro_trace_span", default=None)


class _NoopSpan:
    """Shared do-nothing span: what :func:`span` returns outside a trace."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def annotate(self, **fields) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Span:
    """One timed node in a trace tree.

    Use as a context manager; children opened inside the ``with`` block
    (on the same context) attach automatically.
    """

    __slots__ = (
        "name",
        "request_id",
        "children",
        "meta",
        "wall_ms",
        "cpu_ms",
        "_parent",
        "_token",
        "_wall_start",
        "_cpu_start",
    )

    def __init__(self, name: str, request_id: str | None = None) -> None:
        self.name = name
        self.request_id = request_id
        self.children: list[Span] = []
        self.meta: dict = {}
        self.wall_ms = 0.0
        self.cpu_ms = 0.0
        self._parent: Span | None = None
        self._token = None

    def __enter__(self) -> "Span":
        self._parent = _current_span.get()
        if self._parent is not None:
            self._parent.children.append(self)
            if self.request_id is None:
                self.request_id = self._parent.request_id
        self._token = _current_span.set(self)
        self._cpu_start = thread_time()
        self._wall_start = perf_counter()
        return self

    def __exit__(self, *exc_info):
        self.wall_ms = (perf_counter() - self._wall_start) * 1000.0
        self.cpu_ms = (thread_time() - self._cpu_start) * 1000.0
        _current_span.reset(self._token)
        return False

    def annotate(self, **fields) -> None:
        """Attach key/value detail (candidate counts, chunk sizes, ...)."""
        self.meta.update(fields)

    def to_dict(self) -> dict:
        """JSON-ready span tree: name, wall/CPU ms, meta, children."""
        node: dict = {
            "name": self.name,
            "wall_ms": round(self.wall_ms, 3),
            "cpu_ms": round(self.cpu_ms, 3),
        }
        if self.request_id is not None and self._parent is None:
            node["request_id"] = self.request_id
        if self.meta:
            node["meta"] = dict(self.meta)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node


def start_trace(name: str, request_id: str | None = None) -> Span:
    """A root span — opens a new trace on the current context.

    Unlike :func:`span`, this always returns a real :class:`Span`; it is
    the one call sites make *deliberately* (the server, the CLI ``--trace``
    path).  Everything below uses :func:`span` and stays no-op unless a
    root is active.
    """
    return Span(name, request_id=request_id)


def span(name: str) -> "Span | _NoopSpan":
    """A child span if a trace is active here, else the shared no-op."""
    if _current_span.get() is None:
        return _NOOP_SPAN
    return Span(name)


def active_span() -> "Span | None":
    """The innermost open span on this context, if any."""
    return _current_span.get()
