"""Bring your own data: active EM on records you construct yourself.

Shows the full public API surface on a small hand-written customer-records
example: build two :class:`Table` objects, declare the ground truth you have,
block, extract features, and run active learning with margin-based selection
on a linear SVM.  Replace the hand-written rows with a CSV load to use this
as a template for real data.

Run:  python examples/custom_dataset.py
"""

import numpy as np

from repro import (
    ActiveLearningConfig,
    ActiveLearningLoop,
    EMDataset,
    FeatureExtractor,
    JaccardBlocker,
    LinearSVM,
    MarginSelector,
    PairPool,
    PerfectOracle,
    Record,
    Table,
)

CRM_ROWS = [
    ("c1", "Acme Corporation", "612 Main Street Portland", "acme@acme.com"),
    ("c2", "Globex Inc", "44 Harbor Blvd Seattle", "info@globex.com"),
    ("c3", "Initech LLC", "99 Office Park Austin", "contact@initech.com"),
    ("c4", "Umbrella Health", "7 Hill Road Denver", "hello@umbrella.org"),
    ("c5", "Stark Industries", "1 Tower Plaza New York", "sales@stark.com"),
    ("c6", "Wayne Enterprises", "1007 Mountain Drive Gotham", "office@wayne.com"),
]

BILLING_ROWS = [
    ("b1", "ACME Corp.", "612 Main St, Portland OR", "acme@acme.com"),
    ("b2", "Globex Incorporated", "44 Harbour Boulevard, Seattle", "billing@globex.com"),
    ("b3", "Initech", "99 Office Park, Austin TX", "contact@initech.com"),
    ("b4", "Umbrela Health Group", "7 Hill Rd, Denver CO", "hello@umbrella.org"),
    ("b5", "Stark Industry", "One Tower Plaza, NYC", "sales@stark.com"),
    ("b6", "Cyberdyne Systems", "18 Skynet Way, Sunnyvale", "info@cyberdyne.com"),
]

# The matches a data steward already confirmed (used here as the Oracle).
KNOWN_MATCHES = {("c1", "b1"), ("c2", "b2"), ("c3", "b3"), ("c4", "b4"), ("c5", "b5")}

SCHEMA = ["company", "address", "email"]


def build_table(name: str, rows) -> Table:
    return Table(
        name,
        SCHEMA,
        [
            Record(row_id, {"company": company, "address": address, "email": email})
            for row_id, company, address, email in rows
        ],
    )


def main() -> None:
    dataset = EMDataset(
        name="crm_vs_billing",
        left=build_table("crm", CRM_ROWS),
        right=build_table("billing", BILLING_ROWS),
        matched_columns=SCHEMA,
        matches=KNOWN_MATCHES,
    )

    blocking = JaccardBlocker(threshold=0.05).block(dataset)
    print(f"{dataset.total_pairs} possible pairs -> {blocking.post_blocking_pairs} candidates after blocking")

    extractor = FeatureExtractor(SCHEMA)
    features = extractor.extract(blocking.pairs)
    pool = PairPool(
        features=features.matrix,
        true_labels=np.array([pair.label for pair in blocking.pairs]),
        pairs=blocking.pairs,
    )

    loop = ActiveLearningLoop(
        learner=LinearSVM(),
        selector=MarginSelector(),
        pool=pool,
        oracle=PerfectOracle(pool),
        config=ActiveLearningConfig(seed_size=6, batch_size=2, max_iterations=10, target_f1=1.0),
        dataset_name=dataset.name,
    )
    run = loop.run()
    print(f"best F1 {run.best_f1:.3f} after {run.total_labels} labels ({run.terminated_because})")

    print("\npredicted matches:")
    learner = loop.learner
    predictions = learner.predict(pool.features)
    for pair, prediction in zip(pool.pairs, predictions):
        if prediction == 1:
            print(f"  {pair.left.value('company'):25s} <-> {pair.right.value('company')}")


if __name__ == "__main__":
    main()
