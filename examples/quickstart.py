"""Quickstart: active learning for entity matching in ~60 lines.

Loads the synthetic Abt-Buy stand-in, blocks the Cartesian product, extracts
similarity features, and runs active learning with the paper's best
combination — a random forest of 20 trees with learner-aware query-by-
committee selection — against a perfect Oracle.  It then trains the same
combination as a persistable :class:`~repro.pipeline.MatchingPipeline`,
saves it, reloads it, and scores record pairs with the reloaded model.

Run:  python examples/quickstart.py

``REPRO_EXAMPLE_SCALE`` shrinks the dataset (CI smoke-runs use 0.15).
"""

import os
import tempfile

from repro import (
    ActiveLearningConfig,
    ActiveLearningLoop,
    FeatureExtractor,
    JaccardBlocker,
    MatchingPipeline,
    PairPool,
    PerfectOracle,
    PipelineConfig,
    RandomForest,
    TreeQBCSelector,
    load_dataset,
)

import numpy as np


def main() -> None:
    scale = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.4"))

    # 1. Load a dataset: two tables plus ground-truth matches.
    dataset = load_dataset("abt_buy", scale=scale)
    print(f"dataset: {dataset.name}  left={len(dataset.left)}  right={len(dataset.right)}")

    # 2. Offline blocking prunes obvious non-matches from the Cartesian product.
    blocking = JaccardBlocker(threshold=0.13).block(dataset)
    print(
        f"blocking: {dataset.total_pairs} total pairs -> {blocking.post_blocking_pairs} candidates "
        f"(skew={blocking.class_skew:.3f})"
    )

    # 3. Extract the 21-similarity-function feature vectors.
    extractor = FeatureExtractor(dataset.matched_columns)
    features = extractor.extract(blocking.pairs)
    pool = PairPool(
        features=features.matrix,
        true_labels=np.array([pair.label for pair in blocking.pairs]),
        pairs=blocking.pairs,
    )

    # 4. Active learning: random forest + learner-aware QBC, 30-example seed,
    #    10 labels per iteration, stop at progressive F1 >= 0.98.
    loop = ActiveLearningLoop(
        learner=RandomForest(n_trees=20),
        selector=TreeQBCSelector(),
        pool=pool,
        oracle=PerfectOracle(pool),
        config=ActiveLearningConfig(seed_size=30, batch_size=10, max_iterations=40, target_f1=0.98),
        dataset_name=dataset.name,
    )
    run = loop.run()

    # 5. Inspect the progressive F1 trajectory.
    print("\n#labels  progressive F1")
    for record in run.records:
        print(f"{record.n_labels:7d}  {record.f1:.3f}")
    print(f"\nbest F1 = {run.best_f1:.3f} with {run.labels_to_convergence()} labels "
          f"({run.terminated_because})")

    # 6. The serving path: train the same combination as a MatchingPipeline,
    #    persist it, reload it, and score record pairs with the reloaded
    #    model.  Reloaded scores are bit-identical to the fitted pipeline's,
    #    whatever jobs/chunk_size is used (see docs/pipeline.md).
    pipeline = MatchingPipeline(
        PipelineConfig(
            combination="Trees(20)",
            config=ActiveLearningConfig(
                seed_size=30, batch_size=10, max_iterations=20, target_f1=0.98
            ),
            scale=scale,
        )
    )
    pipeline.fit("abt_buy")
    with tempfile.TemporaryDirectory() as tmp:
        model_dir = os.path.join(tmp, "abt_buy_model")
        manifest = pipeline.save(model_dir)
        served = MatchingPipeline.load(model_dir)
        scores = served.match(dataset.left, dataset.right, chunk_size=512)
    matches = [s for s in scores if s.is_match]
    print(f"\npipeline artifact: config hash {manifest['config_hash']}, "
          f"{manifest['features']['dim']} features")
    print(f"reloaded pipeline scored {len(scores)} candidate pairs, "
          f"{len(matches)} predicted matches; e.g. "
          + ", ".join(f"{s.left_id}~{s.right_id} ({s.score:.2f})" for s in matches[:3]))


if __name__ == "__main__":
    main()
