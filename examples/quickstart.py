"""Quickstart: active learning for entity matching in ~60 lines.

Loads the synthetic Abt-Buy stand-in, blocks the Cartesian product, extracts
similarity features, and runs active learning with the paper's best
combination — a random forest of 20 trees with learner-aware query-by-
committee selection — against a perfect Oracle.  It then trains the same
combination as a persistable :class:`~repro.pipeline.MatchingPipeline`,
saves it, reloads it, and scores record pairs with the reloaded model.
Finally it wraps the pipeline in an incremental
:class:`~repro.index.MatchIndex`: build → add → query → dedup → upsert
without ever re-blocking the indexed corpus.

Run:  python examples/quickstart.py

``REPRO_EXAMPLE_SCALE`` shrinks the dataset (CI smoke-runs use 0.15).
"""

import os
import tempfile

from repro import (
    ActiveLearningConfig,
    ActiveLearningLoop,
    FeatureExtractor,
    IndexConfig,
    JaccardBlocker,
    MatchIndex,
    MatchServer,
    MatchingPipeline,
    PairPool,
    PerfectOracle,
    PipelineConfig,
    RandomForest,
    ServerConfig,
    TreeQBCSelector,
    load_dataset,
)

import numpy as np


def main() -> None:
    scale = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.4"))

    # 1. Load a dataset: two tables plus ground-truth matches.
    dataset = load_dataset("abt_buy", scale=scale)
    print(f"dataset: {dataset.name}  left={len(dataset.left)}  right={len(dataset.right)}")

    # 2. Offline blocking prunes obvious non-matches from the Cartesian product.
    blocking = JaccardBlocker(threshold=0.13).block(dataset)
    print(
        f"blocking: {dataset.total_pairs} total pairs -> {blocking.post_blocking_pairs} candidates "
        f"(skew={blocking.class_skew:.3f})"
    )

    # 3. Extract the 21-similarity-function feature vectors.
    extractor = FeatureExtractor(dataset.matched_columns)
    features = extractor.extract(blocking.pairs)
    pool = PairPool(
        features=features.matrix,
        true_labels=np.array([pair.label for pair in blocking.pairs]),
        pairs=blocking.pairs,
    )

    # 4. Active learning: random forest + learner-aware QBC, 30-example seed,
    #    10 labels per iteration, stop at progressive F1 >= 0.98.
    loop = ActiveLearningLoop(
        learner=RandomForest(n_trees=20),
        selector=TreeQBCSelector(),
        pool=pool,
        oracle=PerfectOracle(pool),
        config=ActiveLearningConfig(seed_size=30, batch_size=10, max_iterations=40, target_f1=0.98),
        dataset_name=dataset.name,
    )
    run = loop.run()

    # 5. Inspect the progressive F1 trajectory.
    print("\n#labels  progressive F1")
    for record in run.records:
        print(f"{record.n_labels:7d}  {record.f1:.3f}")
    print(f"\nbest F1 = {run.best_f1:.3f} with {run.labels_to_convergence()} labels "
          f"({run.terminated_because})")

    # 6. The serving path: train the same combination as a MatchingPipeline,
    #    persist it, reload it, and score record pairs with the reloaded
    #    model.  Reloaded scores are bit-identical to the fitted pipeline's,
    #    whatever jobs/chunk_size is used (see docs/pipeline.md).
    pipeline = MatchingPipeline(
        PipelineConfig(
            combination="Trees(20)",
            config=ActiveLearningConfig(
                seed_size=30, batch_size=10, max_iterations=20, target_f1=0.98
            ),
            scale=scale,
        )
    )
    pipeline.fit("abt_buy")
    with tempfile.TemporaryDirectory() as tmp:
        model_dir = os.path.join(tmp, "abt_buy_model")
        manifest = pipeline.save(model_dir)
        served = MatchingPipeline.load(model_dir)
        scores = served.match(dataset.left, dataset.right, chunk_size=512)
    matches = [s for s in scores if s.is_match]
    print(f"\npipeline artifact: config hash {manifest['config_hash']}, "
          f"{manifest['features']['dim']} features")
    print(f"reloaded pipeline scored {len(scores)} candidate pairs, "
          f"{len(matches)} predicted matches; e.g. "
          + ", ".join(f"{s.left_id}~{s.right_id} ({s.score:.2f})" for s in matches[:3]))

    # 7. The incremental path: index the right table once, then serve
    #    single-record queries and entity resolution under inserts — no
    #    corpus re-blocking per query, results bit-identical to batch
    #    match() under the same LSH blocking (see docs/index.md).
    index = MatchIndex(pipeline, IndexConfig(verify_threshold=0.3, exact_verify=True))
    index.add(dataset.right)                              # build
    probe = dataset.left.records[0]
    hits = index.query(probe, top_k=3)                    # query
    print(f"\nindex: {len(index)} records; query({probe.record_id}) -> "
          + (", ".join(f"{s.right_id} ({s.score:.2f})" for s in hits) or "no candidates"))
    index.add([{"record_id": "fresh-1", **dict(probe.attributes)}])   # add
    hits = index.query(probe, top_k=3)
    print(f"after adding a near-duplicate: "
          + ", ".join(f"{s.right_id} ({s.score:.2f})" for s in hits))
    clusters = index.resolve()                            # dedup
    merged = [c for c in clusters if len(c) > 1]
    print(f"dedup: {len(index)} records -> {len(clusters)} entities "
          f"({len(merged)} clusters with duplicates)")
    # Records that change in place are one atomic upsert, not remove + add;
    # the cached resolution state is repaired, not recomputed.
    outcome = index.upsert([{"record_id": "fresh-1",                 # upsert
                             **dict(probe.attributes),
                             "note": "revised in place"}])
    stats = index.stats()
    print(f"upsert: updated={outcome['updated']} inserted={outcome['inserted']}; "
          f"{len(index.resolve())} entities after "
          f"{stats['resolution_repairs']} in-place resolution repair(s), "
          f"{stats['resolution_recomputes']} recompute(s)")

    # 8. The daemon: the same index behind concurrent HTTP endpoints —
    #    coalesced queries (bit-identical to index.query), generation
    #    counter, snapshots/hot-reload (see docs/server.md).  Ephemeral
    #    port; POST /admin/shutdown or SIGTERM stops the CLI form.
    import json
    import urllib.request

    with MatchServer(index, ServerConfig(batch_window=0.002)) as server:
        url = server.url
        request = urllib.request.Request(
            url + "/query",
            data=json.dumps({"record": {"record_id": probe.record_id,
                                        "attributes": dict(probe.attributes)},
                             "top_k": 3}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            served_hits = json.loads(response.read())
    print(f"daemon at {url}: {served_hits['candidates']} candidates, "
          f"{served_hits['matches']} matches at generation "
          f"{served_hits['generation']} — "
          + ", ".join(f"{p['right_id']} ({p['score']:.2f})"
                      for p in served_hits["pairs"]))


if __name__ == "__main__":
    main()
