"""Compare example-selection strategies for a linear SVM (Fig. 8b / 10b style).

Runs learner-agnostic QBC (committee sizes 2 and 20), learner-aware margin
selection and margin with a single blocking dimension on the same dataset, and
prints progressive F1 together with the latency breakdown (committee-creation
vs example-scoring time) that explains why margin-based strategies are faster.

Run:  python examples/compare_selectors.py [dataset]

``REPRO_EXAMPLE_SCALE`` shrinks the dataset (CI smoke-runs use 0.15).
"""

import os
import sys

from repro.core import ActiveLearningConfig
from repro.harness import prepare_dataset
from repro.harness.builders import run_active_learning
from repro.harness.reporting import format_series, format_table


def main(dataset: str = "dblp_scholar") -> None:
    scale = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.4"))
    prepared = prepare_dataset(dataset, scale=scale)
    print(
        f"{dataset}: {prepared.n_pairs} post-blocking pairs, "
        f"class skew {prepared.class_skew:.3f}\n"
    )

    config = ActiveLearningConfig(seed_size=30, batch_size=10, max_iterations=20, target_f1=0.98)
    combinations = ["Linear-QBC(2)", "Linear-QBC(20)", "Linear-Margin", "Linear-Margin(1Dim)"]

    rows = []
    for name in combinations:
        run = run_active_learning(prepared, name, config=config)
        print(format_series(run.labels_curve(), run.f1_curve(), f"F1  {name}"))
        rows.append(
            {
                "strategy": name,
                "best_f1": round(run.best_f1, 3),
                "labels": run.labels_to_convergence(),
                "committee_creation_s": round(
                    sum(r.committee_creation_time for r in run.records), 4
                ),
                "scoring_s": round(sum(r.scoring_time for r in run.records), 4),
                "total_wait_s": round(run.total_user_wait_time, 4),
            }
        )

    print()
    print(
        format_table(
            rows,
            columns=[
                "strategy", "best_f1", "labels",
                "committee_creation_s", "scoring_s", "total_wait_s",
            ],
            title="Selector comparison (linear SVM)",
        )
    )
    print(
        "\nMargin-based strategies pay no committee-creation cost, which is where "
        "most of QBC's selection latency goes — the paper's 10-100x latency gap."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "dblp_scholar")
