"""Declarative experiment sweeps: parallel execution with resume.

Builds a (dataset x combination) grid of trial specs, runs it across worker
processes with every completed trial persisted to a JSONL run store, then
re-runs the same spec to show that nothing is re-executed on resume.

Run:  python examples/parallel_sweep.py [jobs]

``REPRO_EXAMPLE_SCALE`` shrinks the datasets (CI smoke-runs use 0.15).
"""

import os
import sys
import tempfile
import time

from repro import ExperimentRunner, ExperimentSpec, RunStore, TrialSpec
from repro.runner import default_config


def main(jobs: int = 2) -> None:
    scale = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.3"))
    config = default_config(max_iterations=6)

    spec = ExperimentSpec(
        name="quick_grid",
        trials=tuple(
            TrialSpec(dataset=dataset, combination=combination, scale=scale, config=config)
            for dataset in ("dblp_acm", "abt_buy")
            for combination in ("Trees(20)", "Linear-Margin")
        ),
    )
    print(f"{len(spec)} trials, jobs={jobs}, scale={scale}")

    with tempfile.TemporaryDirectory() as tmp:
        store = RunStore(os.path.join(tmp, "runs.jsonl"))

        start = time.perf_counter()
        result = ExperimentRunner(jobs=jobs, store=store).run(spec)
        print(f"\nsweep: executed={result.executed} resumed={result.resumed} "
              f"in {time.perf_counter() - start:.2f}s")
        for row in result.summaries():
            print(f"  {row['dataset']:10s} {row['combination']:14s} "
                  f"best_f1={row['best_f1']:<7} labels={row['labels']:<4} "
                  f"({row['terminated_because']})")

        # Same spec, same store: everything is loaded, nothing re-runs.
        start = time.perf_counter()
        again = ExperimentRunner(jobs=jobs, store=store).run(spec)
        print(f"\nresume: executed={again.executed} resumed={again.resumed} "
              f"in {time.perf_counter() - start:.3f}s")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
