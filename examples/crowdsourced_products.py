"""Crowd-sourced product deduplication with noisy labels (Fig. 14/15 scenario).

Product catalog integration rarely has expert labelers; labels come from a
crowd that gets some of them wrong.  This example runs the best active
learning combination (Trees(20)) on the Walmart-Amazon stand-in with Oracles
of increasing noise and shows how quality degrades — and why crowdsourced
deployments should terminate early instead of labeling everything.

Run:  python examples/crowdsourced_products.py
"""

from repro.core import ActiveLearningConfig
from repro.harness import prepare_dataset
from repro.harness.builders import run_active_learning
from repro.harness.reporting import format_series, format_table


def main() -> None:
    prepared = prepare_dataset("walmart_amazon", scale=0.4)
    print(
        f"walmart_amazon: {prepared.n_pairs} post-blocking pairs, "
        f"class skew {prepared.class_skew:.3f}\n"
    )

    rows = []
    for noise in (0.0, 0.1, 0.2, 0.3):
        config = ActiveLearningConfig(
            seed_size=30,
            batch_size=10,
            max_iterations=20,
            target_f1=None,  # noisy runs continue; we want to see the degradation
            random_state=1,
        )
        run = run_active_learning(
            prepared, "Trees(20)", config=config, noise=noise, oracle_seed=7
        )
        label = f"{int(noise * 100)}% noise"
        print(format_series(run.labels_curve(), run.f1_curve(), f"F1  {label}"))
        best_labels = run.labels_to_convergence()
        rows.append(
            {
                "oracle_noise": label,
                "best_f1": round(run.best_f1, 3),
                "final_f1": round(run.final_f1, 3),
                "labels_at_best": best_labels,
            }
        )

    print()
    print(format_table(rows, title="Trees(20) under label noise (Walmart-Amazon stand-in)"))
    print(
        "\nWith a perfect Oracle more labels keep helping; with a noisy crowd the "
        "curve flattens or declines — the 'best F1' is reached early, so terminate "
        "active learning before exhausting the budget and add label-error correction."
    )


if __name__ == "__main__":
    main()
