"""Interpretable matching rules vs tree ensembles (Section 6.3 scenario).

Learns an ensemble of high-precision DNF rules with the LFP/LFN heuristic on
the publication dataset, prints the human-readable rules, and contrasts their
size (number of DNF atoms) with the DNF obtained by unrolling a random
forest — the paper's interpretability trade-off.

Run:  python examples/interpretable_rules.py
"""

from repro.core import ActiveLearningConfig, ActiveLearningLoop, PerfectOracle
from repro.harness import prepare_dataset, prepare_rule_dataset
from repro.interpretability import forest_to_dnf, interpretability_score, rule_learner_to_dnf
from repro.learners import RandomForest, RuleLearner
from repro.selectors import LFPLFNSelector, TreeQBCSelector


def main(dataset: str = "dblp_acm") -> None:
    config = ActiveLearningConfig(seed_size=30, batch_size=10, max_iterations=15, target_f1=0.98)

    # --- rule-based learner on Boolean predicate features -------------------
    boolean = prepare_rule_dataset(dataset, scale=0.4)
    rule_learner = RuleLearner(min_precision=0.85)
    rule_run = ActiveLearningLoop(
        learner=rule_learner,
        selector=LFPLFNSelector(),
        pool=boolean.pool,
        oracle=PerfectOracle(boolean.pool),
        config=config,
        dataset_name=dataset,
    ).run()
    rule_dnf = rule_learner_to_dnf(rule_learner, boolean.descriptors)

    print(f"Rules(LFP/LFN) on {dataset}: best F1 {rule_run.best_f1:.3f}, "
          f"{rule_dnf.n_rules} rules, {rule_dnf.n_atoms} atoms, "
          f"interpretability {interpretability_score(rule_dnf):.3f}")
    print("\nLearned rule ensemble:")
    print(rule_dnf.describe())

    # --- tree ensemble on continuous features -------------------------------
    continuous = prepare_dataset(dataset, scale=0.4)
    forest = RandomForest(n_trees=10)
    forest_run = ActiveLearningLoop(
        learner=forest,
        selector=TreeQBCSelector(),
        pool=continuous.pool,
        oracle=PerfectOracle(continuous.pool),
        config=config,
        dataset_name=dataset,
    ).run()
    forest_dnf = forest_to_dnf(forest, continuous.descriptors)

    print(f"\nTrees(10) on {dataset}: best F1 {forest_run.best_f1:.3f}, "
          f"{forest_dnf.n_rules} DNF rules, {forest_dnf.n_atoms} atoms, "
          f"max depth {forest.max_tree_depth}, "
          f"interpretability {interpretability_score(forest_dnf):.5f}")
    print(
        "\nThe forest wins on F1 but its DNF has orders of magnitude more atoms — "
        "use rules when analysts must read and validate the matching logic."
    )


if __name__ == "__main__":
    main()
